// Tests for the core omega engine: the DP matrix (Eq. 3) against direct
// summation, relocation reuse equivalence, grid geometry, the nested-loop
// search against the brute-force oracle, buffer packing, and workload
// accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/integer_method.h"
#include "core/omega_math.h"
#include "core/omega_search.h"
#include "core/reference.h"
#include "core/scanner.h"
#include "core/workload.h"
#include "io/dataset.h"
#include "ld/ld_engine.h"
#include "ld/r2.h"
#include "ld/snp_matrix.h"
#include "util/stats.h"
#include "sim/dataset_factory.h"

namespace {

using omega::core::DpMatrix;
using omega::core::GridPosition;
using omega::core::OmegaConfig;
using omega::io::Dataset;

Dataset test_dataset(std::size_t sites, std::size_t samples,
                     std::uint64_t seed) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = samples,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 15.0,
                                   .seed = seed});
}

double direct_range_sum(const Dataset& d, std::size_t lo, std::size_t hi) {
  double sum = 0.0;
  for (std::size_t i = lo; i <= hi; ++i) {
    for (std::size_t j = lo; j < i; ++j) {
      sum += omega::ld::r2_naive(d, i, j);
    }
  }
  return sum;
}

TEST(OmegaMath, Choose2) {
  EXPECT_DOUBLE_EQ(omega::core::choose2(0), 0.0);
  EXPECT_DOUBLE_EQ(omega::core::choose2(1), 0.0);
  EXPECT_DOUBLE_EQ(omega::core::choose2(2), 1.0);
  EXPECT_DOUBLE_EQ(omega::core::choose2(5), 10.0);
}

TEST(OmegaMath, HandComputedOmega) {
  // l = 2, r = 2: numerator = (LS + RS) / 2, denominator = TS/4 + eps.
  const double omega =
      omega::core::omega_from_sums(1.0, 0.6, 0.2, 2, 2);
  EXPECT_NEAR(omega, (1.6 / 2.0) / (0.05 + 1e-5), 1e-9);
}

TEST(OmegaMath, ZeroCrossSumStaysFinite) {
  const double omega = omega::core::omega_from_sums(2.0, 2.0, 0.0, 3, 3);
  EXPECT_TRUE(std::isfinite(omega));
  EXPECT_GT(omega, 1e4);  // strong signal, bounded by the epsilon
}

TEST(OmegaMath, FloatAndDoubleAgree) {
  for (int i = 0; i < 50; ++i) {
    const double ls = 0.1 * i, rs = 0.07 * i, ts = 0.05 * i + 0.01;
    const std::size_t l = 2 + i % 7, r = 2 + i % 5;
    const double d = omega::core::omega_from_sums(ls, rs, ts, l, r);
    const float f = omega::core::omega_from_sums_f(
        static_cast<float>(ls), static_cast<float>(rs), static_cast<float>(ts),
        static_cast<std::uint32_t>(l), static_cast<std::uint32_t>(r));
    EXPECT_NEAR(d, static_cast<double>(f), std::abs(d) * 1e-5 + 1e-7);
  }
}

TEST(DpMatrix, MatchesDirectSums) {
  const Dataset d = test_dataset(40, 30, 1);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(0);
  m.extend(40, engine);
  for (std::size_t hi = 0; hi < 40; hi += 7) {
    for (std::size_t lo = 0; lo <= hi; lo += 5) {
      EXPECT_NEAR(m.range_sum(lo, hi), direct_range_sum(d, lo, hi),
                  1e-4 * (1.0 + direct_range_sum(d, lo, hi)))
          << lo << ".." << hi;
    }
  }
}

TEST(DpMatrix, DiagonalIsZero) {
  const Dataset d = test_dataset(10, 20, 2);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(0);
  m.extend(10, engine);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(m.at(i, i), 0.0);
  }
}

TEST(DpMatrix, AdjacentEntryIsPairR2) {
  const Dataset d = test_dataset(12, 25, 3);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(0);
  m.extend(12, engine);
  for (std::size_t i = 1; i < 12; ++i) {
    EXPECT_NEAR(m.at(i, i - 1), omega::ld::r2_naive(d, i, i - 1), 2e-6);
  }
}

TEST(DpMatrix, RelocationPreservesValues) {
  const Dataset d = test_dataset(50, 24, 4);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix moved;
  moved.reset(0);
  moved.extend(30, engine);
  moved.relocate(12);
  moved.extend(50, engine);

  DpMatrix fresh;
  fresh.reset(12);
  fresh.extend(50, engine);

  for (std::size_t i = 12; i < 50; ++i) {
    for (std::size_t j = 12; j <= i; ++j) {
      ASSERT_DOUBLE_EQ(moved.at(i, j), fresh.at(i, j)) << i << "," << j;
    }
  }
}

TEST(DpMatrix, RelocationSavesFetches) {
  const Dataset d = test_dataset(60, 24, 5);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix reused;
  reused.reset(0);
  reused.extend(40, engine);
  const auto before = reused.r2_fetches();
  reused.relocate(10);
  reused.extend(50, engine);
  const auto incremental = reused.r2_fetches() - before;

  DpMatrix rebuilt;
  rebuilt.reset(10);
  rebuilt.extend(50, engine);
  EXPECT_LT(incremental, rebuilt.r2_fetches());
}

TEST(DpMatrix, RelocatePastEndResets) {
  const Dataset d = test_dataset(30, 24, 6);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(0);
  m.extend(10, engine);
  m.relocate(20);
  EXPECT_EQ(m.base(), 20u);
  EXPECT_EQ(m.count(), 0u);
  m.extend(30, engine);
  EXPECT_NEAR(m.range_sum(20, 29), direct_range_sum(d, 20, 29), 1e-4);
}

TEST(DpMatrix, BackwardRelocationThrows) {
  DpMatrix m;
  m.reset(10);
  EXPECT_THROW(m.relocate(5), std::invalid_argument);
}

TEST(DpMatrix, OutOfRangeAccessThrows) {
  const Dataset d = test_dataset(10, 24, 7);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(2);
  m.extend(8, engine);
  EXPECT_THROW((void)m.at(8, 2), std::out_of_range);
  EXPECT_THROW((void)m.at(7, 1), std::out_of_range);
  EXPECT_THROW((void)m.at(3, 5), std::out_of_range);  // j > i
}

// ---------------------------------------------------------------------------
// Grid geometry
// ---------------------------------------------------------------------------

TEST(Grid, CombinationCountMatchesEnumeration) {
  const Dataset d = test_dataset(80, 20, 8);
  OmegaConfig config;
  config.grid_size = 9;
  config.max_window = 400'000;
  config.min_window = 10'000;
  const auto grid = omega::core::build_grid(d, config);
  ASSERT_EQ(grid.size(), 9u);
  for (const auto& position : grid) {
    if (!position.valid) continue;
    std::uint64_t manual = 0;
    for (std::size_t a = position.lo; a <= position.a_max; ++a) {
      for (std::size_t b = position.b_min; b <= position.hi; ++b) {
        ++manual;
        ASSERT_GE(position.c - a + 1, 2u);  // l >= 2
        ASSERT_GE(b - position.c, 2u);      // r >= 2
      }
    }
    EXPECT_EQ(position.combinations(), manual);
  }
}

TEST(Grid, RespectsBpWindows) {
  const Dataset d = test_dataset(100, 20, 9);
  OmegaConfig config;
  config.grid_size = 5;
  config.max_window = 100'000;
  config.min_window = 20'000;
  for (const auto& position : omega::core::build_grid(d, config)) {
    if (!position.valid) continue;
    // Region bounded by max_window/2 per side.
    EXPECT_GE(d.position(position.lo), position.position_bp - 50'000);
    EXPECT_LE(d.position(position.hi), position.position_bp + 50'000);
    // Borders honour min_window/2.
    EXPECT_LE(d.position(position.a_max), position.position_bp - 10'000);
    EXPECT_GE(d.position(position.b_min), position.position_bp + 10'000);
  }
}

TEST(Grid, SnpWindowUnit) {
  const Dataset d = test_dataset(200, 20, 10);
  OmegaConfig config;
  config.grid_size = 3;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 60;  // 30 SNPs per side
  config.min_window = 10;  // 5 SNPs per side minimum
  for (const auto& position : omega::core::build_grid(d, config)) {
    if (!position.valid) continue;
    EXPECT_LE(position.left_snps(), 30u);
    EXPECT_LE(position.right_snps(), 30u);
    EXPECT_GE(position.c - position.a_max + 1, 5u);
    EXPECT_GE(position.b_min - position.c, 5u);
  }
}

TEST(Grid, SideCapLimitsRegion) {
  const Dataset d = test_dataset(150, 20, 11);
  OmegaConfig config;
  config.grid_size = 3;
  config.max_window = 2'000'000;
  config.min_window = 2;
  config.max_snps_per_side = 20;
  for (const auto& position : omega::core::build_grid(d, config)) {
    if (!position.valid) continue;
    EXPECT_LE(position.left_snps(), 20u);
    EXPECT_LE(position.right_snps(), 20u);
  }
}

TEST(Grid, InvalidWhenOffTheData) {
  const Dataset d = test_dataset(50, 20, 12);
  OmegaConfig config;
  const auto before_first = omega::core::resolve_position(
      d, config, d.positions().front() - 1000);
  EXPECT_FALSE(before_first.valid);
  const auto past_last =
      omega::core::resolve_position(d, config, d.positions().back() + 1);
  EXPECT_FALSE(past_last.valid);
}

TEST(Grid, TinyDatasetInvalid) {
  const Dataset d({10, 20, 30}, {{0, 1}, {1, 0}, {0, 1}}, 100);
  OmegaConfig config;
  const auto position = omega::core::resolve_position(d, config, 20);
  EXPECT_FALSE(position.valid);  // cannot satisfy l,r >= 2
}

TEST(Grid, ConfigValidation) {
  OmegaConfig config;
  config.grid_size = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.grid_size = 10;
  config.max_window = 5;
  config.min_window = 10;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Max-omega search vs brute force
// ---------------------------------------------------------------------------

struct SearchCase {
  std::size_t sites;
  std::size_t samples;
  std::int64_t max_window;
  std::int64_t min_window;
  std::uint64_t seed;
};

class SearchVsBrute : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchVsBrute, MaxOmegaAgrees) {
  const auto param = GetParam();
  const Dataset d = test_dataset(param.sites, param.samples, param.seed);
  OmegaConfig config;
  config.grid_size = 5;
  config.max_window = param.max_window;
  config.min_window = param.min_window;
  const auto grid = omega::core::build_grid(d, config);

  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);

  for (const auto& position : grid) {
    if (!position.valid) continue;
    DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
    const auto fast = omega::core::max_omega_search(m, position);
    const auto brute = omega::core::brute_force_position(d, position);
    ASSERT_EQ(fast.evaluated, brute.evaluated);
    ASSERT_NEAR(fast.max_omega, brute.max_omega,
                1e-3 * (1.0 + brute.max_omega));
    // The winning window must score within noise of the brute-force optimum
    // (float r2 accumulation may swap exact argmax between near-ties).
    const double fast_window_score = omega::core::brute_force_omega(
        d, fast.best_a, position.c, fast.best_b);
    EXPECT_NEAR(fast_window_score, brute.max_omega,
                1e-3 * (1.0 + brute.max_omega));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SearchVsBrute,
    ::testing::Values(SearchCase{30, 20, 600'000, 2, 21},
                      SearchCase{40, 12, 300'000, 50'000, 22},
                      SearchCase{25, 40, 1'000'000, 2, 23},
                      SearchCase{50, 16, 200'000, 20'000, 24},
                      SearchCase{35, 30, 2'000'000, 100'000, 25}));

TEST(PackPosition, BuffersMatchMatrix) {
  const Dataset d = test_dataset(40, 20, 31);
  OmegaConfig config;
  config.grid_size = 3;
  config.max_window = 800'000;
  const auto grid = omega::core::build_grid(d, config);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  for (const auto& position : grid) {
    if (!position.valid) continue;
    DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
    const auto buffers = omega::core::pack_position(m, position);
    ASSERT_EQ(buffers.combinations(), position.combinations());
    for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
      const std::size_t a = position.lo + ai;
      ASSERT_FLOAT_EQ(buffers.ls[ai],
                      static_cast<float>(m.at(position.c, a)));
      ASSERT_EQ(buffers.l_counts[ai], position.c - a + 1);
    }
    for (std::size_t bi = 0; bi < buffers.num_right; ++bi) {
      const std::size_t b = position.b_min + bi;
      ASSERT_FLOAT_EQ(buffers.rs[bi],
                      static_cast<float>(m.at(b, position.c + 1)));
    }
    EXPECT_GT(buffers.payload_bytes(), 0u);
  }
}

// ---------------------------------------------------------------------------
// Integer-method baseline
// ---------------------------------------------------------------------------

TEST(IntegerMethod, ScoresSameGridGeometry) {
  const Dataset d = test_dataset(120, 30, 51);
  OmegaConfig config;
  config.grid_size = 10;
  config.max_window = 300'000;
  config.min_window = 10'000;
  const auto integer = omega::core::integer_method_scan(d, config);
  omega::core::ScannerOptions options;
  options.config = config;
  const auto exact = omega::core::scan(d, options);
  ASSERT_EQ(integer.scores.size(), exact.scores.size());
  for (std::size_t g = 0; g < integer.scores.size(); ++g) {
    EXPECT_EQ(integer.scores[g].valid, exact.scores[g].valid);
    EXPECT_EQ(integer.scores[g].evaluated, exact.scores[g].evaluated);
    if (integer.scores[g].valid) {
      EXPECT_GE(integer.scores[g].max_omega, 0.0);
      EXPECT_TRUE(std::isfinite(integer.scores[g].max_omega));
    }
  }
}

TEST(IntegerMethod, CorrelatesWithOmegaLandscape) {
  const Dataset d = test_dataset(200, 40, 52);
  OmegaConfig config;
  config.grid_size = 20;
  config.max_window = 250'000;
  config.min_window = 20'000;
  const auto integer = omega::core::integer_method_scan(d, config);
  omega::core::ScannerOptions options;
  options.config = config;
  const auto exact = omega::core::scan(d, options);
  std::vector<double> a, b;
  for (std::size_t g = 0; g < exact.scores.size(); ++g) {
    if (!exact.scores[g].valid) continue;
    a.push_back(exact.scores[g].max_omega);
    b.push_back(integer.scores[g].max_omega);
  }
  ASSERT_GT(a.size(), 5u);
  // Related but distinct statistics: positive correlation, not identity.
  EXPECT_GT(omega::util::spearman(a, b), 0.2);
}

TEST(Spearman, HandCases) {
  EXPECT_DOUBLE_EQ(omega::util::spearman({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0);
  EXPECT_DOUBLE_EQ(omega::util::spearman({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0);
  // Monotone but nonlinear is still rank-perfect.
  EXPECT_DOUBLE_EQ(omega::util::spearman({1, 2, 3, 4}, {1, 10, 100, 1000}), 1.0);
  // Ties get averaged ranks.
  const double tied = omega::util::spearman({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(tied, 0.8);
  EXPECT_LT(tied, 1.0);
}

// ---------------------------------------------------------------------------
// Workload accounting
// ---------------------------------------------------------------------------

TEST(Workload, MatchesGridCombinations) {
  const Dataset d = test_dataset(120, 20, 41);
  OmegaConfig config;
  config.grid_size = 12;
  config.max_window = 300'000;
  config.min_window = 10'000;
  const auto workload = omega::core::analyze_workload(d, config);
  const auto grid = omega::core::build_grid(d, config);
  ASSERT_EQ(workload.positions.size(), grid.size());
  std::uint64_t total = 0;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    EXPECT_EQ(workload.positions[g].combinations, grid[g].combinations());
    total += grid[g].combinations();
  }
  EXPECT_EQ(workload.total_combinations, total);
  EXPECT_LE(workload.total_r2_with_reuse, workload.total_r2_without_reuse);
}

TEST(Workload, ReuseAccountingMatchesDpMatrix) {
  const Dataset d = test_dataset(100, 20, 42);
  OmegaConfig config;
  config.grid_size = 8;
  config.max_window = 250'000;
  config.min_window = 5'000;
  const auto workload = omega::core::analyze_workload(d, config);

  // Replay the scanner's relocate/extend sequence and compare fetch counts.
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  bool live = false;
  std::uint64_t previous = 0;
  for (const auto& item : workload.positions) {
    if (!item.geometry.valid) continue;
    if (!live) {
      m.reset(item.geometry.lo);
      live = true;
    } else {
      m.relocate(item.geometry.lo);
    }
    m.extend(item.geometry.hi + 1, engine);
    EXPECT_EQ(m.r2_fetches() - previous, item.r2_with_reuse);
    previous = m.r2_fetches();
  }
  EXPECT_EQ(m.r2_fetches(), workload.total_r2_with_reuse);
}

}  // namespace
