// Telemetry subsystem tests: histogram bucket/quantile math against the
// documented boundaries, registry reset/delta semantics, concurrent updates
// from thread-pool workers, the Prometheus text and schema-v6 JSON
// exposition, Chrome-trace export well-formedness (re-parsed with the
// repo's own JSON parser), progress rate limiting under a virtual clock,
// count reconciliation between per-scan telemetry and ScanProfile counters
// for every backend, and the metrics-diff regression engine behind
// tools/omega_metrics_diff.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/metrics_diff.h"
#include "core/metrics_json.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "io/chunk_reader.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/fault.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

namespace telemetry = omega::util::telemetry;
using omega::core::metrics::JsonValue;
using omega::util::ProgressReporter;
using omega::util::ProgressUpdate;
using telemetry::Histogram;
using telemetry::kHistogramBuckets;

omega::io::Dataset telemetry_dataset(std::uint64_t seed,
                                     std::size_t sites = 140) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = 24,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 25.0,
                                   .seed = seed});
}

omega::core::ScannerOptions telemetry_options() {
  omega::core::ScannerOptions options;
  options.config.grid_size = 16;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 300;
  options.config.min_window = 40;
  return options;
}

std::uint64_t valid_scores(const omega::core::ScanResult& result) {
  std::uint64_t n = 0;
  for (const auto& score : result.scores) {
    if (score.valid) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// Histogram math

TEST(TelemetryHistogram, BucketBoundariesAreExact) {
  const Histogram h(1.0);
  // Bucket 0 absorbs everything <= base; bucket i covers (base*2^(i-1),
  // base*2^i], with values exactly on an upper bound belonging to it.
  EXPECT_EQ(h.bucket_index(-3.0), 0u);
  EXPECT_EQ(h.bucket_index(0.0), 0u);
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);
  EXPECT_EQ(h.bucket_index(1.0001), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(2.0001), 2u);
  EXPECT_EQ(h.bucket_index(4.0), 2u);
  EXPECT_EQ(h.bucket_index(8.0), 3u);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bucket_upper_bound(3), 8.0);
  // The last bucket absorbs everything above its bound.
  EXPECT_EQ(h.bucket_index(1e300), kHistogramBuckets - 1);
}

TEST(TelemetryHistogram, DefaultBaseSuitsSecondScaleLatencies) {
  const Histogram h;  // base 1e-9 (1 ns)
  EXPECT_EQ(h.bucket_index(1e-9), 0u);
  EXPECT_EQ(h.bucket_index(1.5e-9), 1u);
  EXPECT_EQ(h.bucket_index(2e-9), 1u);
  // 1 ms sits in bucket 20: 1e-9 * 2^20 = 1.048576e-3 >= 1e-3 > 2^19 * 1e-9.
  EXPECT_EQ(h.bucket_index(1e-3), 20u);
  EXPECT_GT(h.bucket_upper_bound(20), 1e-3);
  EXPECT_LT(h.bucket_upper_bound(19), 1e-3);
}

TEST(TelemetryHistogram, QuantilesAreBucketResolvedAndClamped) {
  Histogram h(1.0);
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_DOUBLE_EQ(snap.min, 1.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
  // Rank ceil(0.5*100) = 50 -> sample 50 -> bucket (32, 64] -> bound 64.
  EXPECT_DOUBLE_EQ(snap.quantile(0.5), 64.0);
  // Rank 90 -> sample 90 -> bucket (64, 128] -> bound 128, clamped to the
  // observed max of 100.
  EXPECT_DOUBLE_EQ(snap.quantile(0.9), 100.0);
  // q = 0 clamps the rank to the first sample; q = 1 to the last.
  EXPECT_DOUBLE_EQ(snap.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(snap.quantile(1.0), 100.0);
}

TEST(TelemetryHistogram, EmptyHistogramAndNonFiniteSamples) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.snapshot().mean(), 0.0);
  h.record(std::nan(""));
  h.record(std::numeric_limits<double>::infinity());
  h.record(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.snapshot().count, 0u) << "non-finite samples must not count";
  EXPECT_EQ(h.dropped(), 3u);
  h.record(1.0);
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_DOUBLE_EQ(h.snapshot().sum, 1.0) << "sum must not be NaN-poisoned";
}

TEST(TelemetryHistogram, DeltaSinceSubtractsPerBucket) {
  Histogram h(1.0);
  h.record(1.0);
  h.record(3.0);
  const auto begin = h.snapshot();
  h.record(5.0);
  h.record(7.0);
  const auto delta = h.snapshot().delta_since(begin);
  EXPECT_EQ(delta.count, 2u);
  EXPECT_DOUBLE_EQ(delta.sum, 12.0);
  // Both new samples fall in bucket (4, 8].
  EXPECT_EQ(delta.buckets[3], 2u);
  EXPECT_EQ(delta.buckets[0], 0u);
  // Extremes keep the later snapshot's values (not invertible)...
  EXPECT_DOUBLE_EQ(delta.min, 1.0);
  EXPECT_DOUBLE_EQ(delta.max, 7.0);
  // ...except an empty delta, which zeroes them.
  const auto none = h.snapshot().delta_since(h.snapshot());
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.sum, 0.0);
  EXPECT_DOUBLE_EQ(none.min, 0.0);
  EXPECT_DOUBLE_EQ(none.max, 0.0);
}

// ---------------------------------------------------------------------------
// Registry semantics

TEST(TelemetryRegistry, ResolvesToTheSameInstanceAndResetsInPlace) {
  auto& c = telemetry::counter("test.registry.counter");
  auto& h = telemetry::histogram("test.registry.hist", 1.0);
  auto& g = telemetry::gauge("test.registry.gauge");
  EXPECT_EQ(&c, &telemetry::counter("test.registry.counter"));
  EXPECT_EQ(&h, &telemetry::histogram("test.registry.hist"));
  c.add(5);
  h.record(2.0);
  g.set(1.5);
  telemetry::reset();
  // reset() zeroes in place; cached references stay valid and usable.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  c.add(1);
  EXPECT_EQ(telemetry::counter("test.registry.counter").value(), 1u);
}

TEST(TelemetryRegistry, HistogramBaseIsFixedByFirstRegistration) {
  auto& h = telemetry::histogram("test.registry.base", 1.0);
  auto& again = telemetry::histogram("test.registry.base", 123.0);
  EXPECT_EQ(&h, &again);
  EXPECT_DOUBLE_EQ(again.base(), 1.0);
}

TEST(TelemetryRegistry, SnapshotDeltaAttributesAnInterval) {
  auto& c = telemetry::counter("test.registry.delta");
  auto& h = telemetry::histogram("test.registry.delta_hist", 1.0);
  c.add(3);
  h.record(1.0);
  const auto begin = telemetry::snapshot();
  c.add(4);
  h.record(2.0);
  h.record(2.0);
  const auto delta = telemetry::snapshot().delta_since(begin);
  EXPECT_EQ(delta.counter_value("test.registry.delta"), 4u);
  const auto* hist = delta.find_histogram("test.registry.delta_hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 2u);
  EXPECT_DOUBLE_EQ(hist->sum, 4.0);
  EXPECT_EQ(delta.counter_value("test.registry.absent"), 0u);
  EXPECT_EQ(delta.find_histogram("test.registry.absent"), nullptr);
}

TEST(TelemetryRegistry, SnapshotIsNameSorted) {
  (void)telemetry::counter("test.sort.b");
  (void)telemetry::counter("test.sort.a");
  const auto snap = telemetry::snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

TEST(TelemetryConcurrency, CountersAndHistogramsFromPoolWorkers) {
  auto& c = telemetry::counter("test.concurrent.counter");
  auto& h = telemetry::histogram("test.concurrent.hist", 1.0);
  const auto count_before = c.value();
  const auto hist_before = h.snapshot().count;
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 250;
  omega::par::ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    tasks.push_back([&c, &h] {
      for (int i = 0; i < kIncrementsPerTask; ++i) {
        c.add(1);
        h.record(static_cast<double>(i % 7));
      }
    });
  }
  pool.run_blocking(std::move(tasks));
  EXPECT_EQ(c.value() - count_before,
            static_cast<std::uint64_t>(kTasks) * kIncrementsPerTask);
  EXPECT_EQ(h.snapshot().count - hist_before,
            static_cast<std::uint64_t>(kTasks) * kIncrementsPerTask);
}

TEST(TelemetryConcurrency, ThreadPoolPopulatesItsOwnMetrics) {
  const auto before = telemetry::snapshot();
  {
    omega::par::ThreadPool pool(2);
    std::vector<std::function<void()>> tasks(32, [] {});
    pool.run_blocking(std::move(tasks));
    pool.submit([] {}).get();
  }
  const auto delta = telemetry::snapshot().delta_since(before);
  EXPECT_EQ(delta.counter_value("pool.tasks_total"), 33u);
  const auto* latency = delta.find_histogram("pool.task_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, 33u);
  const auto* depth = delta.find_histogram("pool.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->count, 33u) << "one queue-depth sample per enqueue";
}

// ---------------------------------------------------------------------------
// Exposition formats

TEST(TelemetryText, PrometheusExpositionShape) {
  telemetry::reset();
  telemetry::counter("text.demo.count").add(2);
  telemetry::gauge("text.demo.ratio").set(0.5);
  auto& h = telemetry::histogram("text.demo.latency", 1.0);
  h.record(1.5);
  h.record(3.0);
  const std::string text = telemetry::to_text();
  EXPECT_NE(text.find("# TYPE omega_text_demo_count counter"),
            std::string::npos);
  EXPECT_NE(text.find("omega_text_demo_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE omega_text_demo_ratio gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE omega_text_demo_latency histogram"),
            std::string::npos);
  // Cumulative buckets: 1.5 -> (1,2], 3.0 -> (2,4]; the +Inf bucket always
  // carries the total count.
  EXPECT_NE(text.find("omega_text_demo_latency_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("omega_text_demo_latency_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("omega_text_demo_latency_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("omega_text_demo_latency_sum 4.5"), std::string::npos);
  EXPECT_NE(text.find("omega_text_demo_latency_count 2"), std::string::npos);
}

TEST(TelemetryJson, SchemaBlockRoundTripsThroughTheParser) {
  telemetry::reset();
  telemetry::counter("json.demo.count").add(2);
  telemetry::gauge("json.demo.gauge").set(0.25);
  telemetry::histogram("json.demo.hist", 1.0).record(3.0);
  const auto doc = omega::core::metrics::telemetry_json(telemetry::snapshot());
  const auto parsed = JsonValue::parse(doc.dump());
  EXPECT_EQ(parsed.at("counters").at("json.demo.count").as_uint(), 2u);
  EXPECT_DOUBLE_EQ(parsed.at("gauges").at("json.demo.gauge").as_double(),
                   0.25);
  const auto& hist = parsed.at("histograms").at("json.demo.hist");
  EXPECT_EQ(hist.at("count").as_uint(), 1u);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_double(), 3.0);
  // 3.0 clamps to the observed extremes for every quantile.
  EXPECT_DOUBLE_EQ(hist.at("p50").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(hist.at("p99").as_double(), 3.0);
  const auto& buckets = hist.at("buckets").items();
  ASSERT_EQ(buckets.size(), 1u) << "only occupied buckets materialize";
  EXPECT_DOUBLE_EQ(buckets[0].at("le").as_double(), 4.0);
  EXPECT_EQ(buckets[0].at("count").as_uint(), 1u);
}

// ---------------------------------------------------------------------------
// Chrome-trace export + session-relative thread ids

TEST(TraceSession, ThreadIdsAreSessionRelative) {
  omega::util::trace::enable(64);
  omega::util::trace::record("main-span", 0.0, 1.0);
  std::thread([] { omega::util::trace::record("worker-span", 0.5, 1.0); })
      .join();
  const auto snap = omega::util::trace::take_snapshot();
  ASSERT_EQ(snap.events.size(), 2u);
  EXPECT_EQ(snap.num_threads, 2u);
  std::set<std::uint32_t> tids;
  for (const auto& event : snap.events) tids.insert(event.thread_id);
  EXPECT_EQ(tids, (std::set<std::uint32_t>{0u, 1u}));

  // A later session records from a brand-new thread whose raw process-wide
  // id keeps growing; the exported id must still start at 0.
  omega::util::trace::enable(64);
  std::thread([] { omega::util::trace::record("second-session", 0.0, 1.0); })
      .join();
  const auto second = omega::util::trace::take_snapshot();
  ASSERT_EQ(second.events.size(), 1u);
  EXPECT_EQ(second.num_threads, 1u);
  EXPECT_EQ(second.events[0].thread_id, 0u);
  omega::util::trace::disable();
}

TEST(TraceSession, RingOverflowIsReportedAsDropped) {
  omega::util::trace::enable(4);
  for (int i = 0; i < 10; ++i) {
    omega::util::trace::record("spam", static_cast<double>(i), 0.25);
  }
  const auto snap = omega::util::trace::take_snapshot();
  EXPECT_EQ(snap.recorded, 10u);
  EXPECT_EQ(snap.events.size(), 4u);
  EXPECT_EQ(snap.dropped, 6u);
  // The drop count reaches the exported trace metadata.
  const auto doc = omega::core::metrics::chrome_trace();
  EXPECT_EQ(doc.at("otherData").at("dropped").as_uint(), 6u);
  EXPECT_EQ(doc.at("otherData").at("recorded").as_uint(), 10u);
  omega::util::trace::disable();
}

TEST(ChromeTrace, StreamedFaultyScanExportsWellFormedJson) {
  omega::util::trace::enable();
  const auto dataset = telemetry_dataset(71, 160);
  omega::io::DatasetChunkReader reader(dataset);
  auto options = telemetry_options();
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;  // force a multi-chunk scan
  omega::util::fault::FaultPlan plan;
  plan.mode = omega::util::fault::FaultMode::KernelLaunch;
  plan.rate = 0.25;
  plan.seed = 4242;
  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  const auto result = omega::core::stream_scan(
      reader, options, stream_options, [&] {
        omega::hw::gpu::GpuBackendOptions backend_options;
        backend_options.fault_plan = plan;
        return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(
            spec, pool, backend_options);
      });
  ASSERT_GT(result.profile.stream.chunks, 1u);
  ASSERT_GT(result.profile.faults.faults_injected, 0u);

  // Export, serialize, and re-parse with the repo's own strict parser.
  const std::string text = omega::core::metrics::chrome_trace().dump();
  const auto parsed = JsonValue::parse(text);
  EXPECT_EQ(parsed.at("displayTimeUnit").as_string(), "ms");
  const auto& events = parsed.at("traceEvents").items();
  ASSERT_FALSE(events.empty());
  bool saw_complete = false;
  bool saw_instant = false;
  bool saw_thread_name = false;
  bool saw_recovery = false;
  std::set<std::int64_t> tids;
  for (const auto& event : events) {
    const std::string ph = event.at("ph").as_string();
    tids.insert(event.at("tid").as_int());
    if (ph == "X") {
      saw_complete = true;
      EXPECT_GE(event.at("ts").as_double(), 0.0);
      EXPECT_GE(event.at("dur").as_double(), 0.0);
    } else if (ph == "i") {
      saw_instant = true;
      EXPECT_EQ(event.at("s").as_string(), "t");
      if (event.at("name").as_string().rfind("scan.recover.", 0) == 0) {
        saw_recovery = true;
      }
    } else if (ph == "M") {
      saw_thread_name = true;
      EXPECT_EQ(event.at("name").as_string(), "thread_name");
    } else {
      ADD_FAILURE() << "unexpected phase " << ph;
    }
  }
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_recovery) << "faulty scan must export recovery instants";
  EXPECT_EQ(*tids.begin(), 0) << "thread ids must be session-relative";
  omega::util::trace::disable();
}

// ---------------------------------------------------------------------------
// Progress reporting

TEST(ProgressRateLimit, VirtualClockGatesEmissions) {
  double now = 0.0;
  std::vector<ProgressUpdate> updates;
  ProgressReporter reporter(
      [&](const ProgressUpdate& update) { updates.push_back(update); },
      /*interval_seconds=*/1.0, [&] { return now; });
  reporter.begin(100, 10);
  EXPECT_EQ(reporter.emitted(), 1u) << "begin() emits the initial update";
  reporter.advance({.positions = 10});
  reporter.advance({.positions = 10});
  EXPECT_EQ(reporter.emitted(), 1u) << "suppressed inside the interval";
  now = 0.5;
  reporter.advance({.positions = 10});
  EXPECT_EQ(reporter.emitted(), 1u);
  now = 1.0;
  reporter.advance({.positions = 10});
  EXPECT_EQ(reporter.emitted(), 2u) << "interval boundary emits";
  EXPECT_EQ(updates.back().positions_done, 40u)
      << "suppressed deltas still accumulate";
  now = 1.2;
  reporter.advance({.positions = 20, .faults = 3});
  EXPECT_EQ(reporter.emitted(), 2u);
  reporter.finish();
  EXPECT_EQ(reporter.emitted(), 3u) << "finish() always emits";
  EXPECT_TRUE(updates.back().final);
  EXPECT_EQ(updates.back().positions_done, 60u);
  EXPECT_EQ(updates.back().faults, 3u);
  reporter.finish();
  EXPECT_EQ(reporter.emitted(), 3u) << "finish() is idempotent";
}

TEST(ProgressRateLimit, ThroughputAndEtaFromTheClock) {
  double now = 0.0;
  ProgressReporter reporter([](const ProgressUpdate&) {}, 1.0,
                            [&] { return now; });
  reporter.begin(100);
  now = 2.0;
  reporter.advance({.positions = 50});
  const auto update = reporter.last_update();
  EXPECT_DOUBLE_EQ(update.elapsed_seconds, 2.0);
  EXPECT_DOUBLE_EQ(update.positions_per_second, 25.0);
  EXPECT_DOUBLE_EQ(update.eta_seconds, 2.0) << "50 left at 25/s";
  EXPECT_NE(update.line().find("50/100 positions"), std::string::npos);
  EXPECT_NE(update.line().find("ETA"), std::string::npos);
}

TEST(ProgressRateLimit, AdvanceWithoutBeginSelfStarts) {
  double now = 5.0;
  ProgressReporter reporter([](const ProgressUpdate&) {}, 1.0,
                            [&] { return now; });
  reporter.advance({.positions = 1});
  EXPECT_EQ(reporter.emitted(), 1u) << "first advance emits when never begun";
  EXPECT_EQ(reporter.last_update().positions_done, 1u);
  EXPECT_EQ(reporter.last_update().positions_total, 0u);
  reporter.finish();
  EXPECT_TRUE(reporter.last_update().final);
}

TEST(ProgressScan, ScanDriverFeedsTheReporter) {
  const auto dataset = telemetry_dataset(81);
  auto options = telemetry_options();
  std::vector<ProgressUpdate> updates;
  ProgressReporter reporter(
      [&](const ProgressUpdate& update) { updates.push_back(update); },
      /*interval_seconds=*/0.0);  // emit every advance
  options.progress = &reporter;
  const auto result = omega::core::scan(dataset, options);
  ASSERT_FALSE(updates.empty());
  EXPECT_TRUE(updates.back().final);
  EXPECT_EQ(updates.back().positions_total, valid_scores(result));
  EXPECT_EQ(updates.back().positions_done, valid_scores(result));
}

TEST(ProgressScan, StreamScanReportsChunks) {
  const auto dataset = telemetry_dataset(82, 160);
  omega::io::DatasetChunkReader reader(dataset);
  auto options = telemetry_options();
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  std::vector<ProgressUpdate> updates;
  ProgressReporter reporter(
      [&](const ProgressUpdate& update) { updates.push_back(update); }, 0.0);
  options.progress = &reporter;
  const auto result =
      omega::core::stream_scan(reader, options, stream_options);
  ASSERT_FALSE(updates.empty());
  EXPECT_TRUE(updates.back().final);
  EXPECT_EQ(updates.back().chunks_total, result.profile.stream.chunks);
  EXPECT_EQ(updates.back().chunks_done, result.profile.stream.chunks);
  EXPECT_EQ(updates.back().positions_done, valid_scores(result));
}

// ---------------------------------------------------------------------------
// Per-scan telemetry reconciles with ScanProfile counters

TEST(TelemetryScan, CpuScanPopulatesStageHistograms) {
  const auto dataset = telemetry_dataset(91);
  const auto result = omega::core::scan(dataset, telemetry_options());
  const auto& tel = result.profile.telemetry;
  const auto* reset_hist = tel.find_histogram("scan.reset_seconds");
  const auto* extend_hist = tel.find_histogram("scan.extend_seconds");
  const auto* relocate_hist = tel.find_histogram("scan.relocate_seconds");
  ASSERT_NE(reset_hist, nullptr);
  ASSERT_NE(extend_hist, nullptr);
  ASSERT_NE(relocate_hist, nullptr);
  EXPECT_GT(reset_hist->count, 0u);
  EXPECT_GT(extend_hist->count, 0u);
  // Every scored position either reset or relocated the DP matrix.
  EXPECT_EQ(reset_hist->count + relocate_hist->count, valid_scores(result));
}

TEST(TelemetryScan, GpuLaunchHistogramMatchesKernelLaunchCounts) {
  const auto dataset = telemetry_dataset(92);
  omega::par::ThreadPool pool(2);
  omega::hw::gpu::GpuOmegaBackend gpu(omega::hw::tesla_k80(), pool, {});
  const auto result = omega::core::scan(
      dataset, telemetry_options(),
      [&] { return omega::core::borrow_backend(gpu); });
  const auto* launches =
      result.profile.telemetry.find_histogram("gpu.launch_modeled_seconds");
  ASSERT_NE(launches, nullptr);
  EXPECT_GT(launches->count, 0u);
  EXPECT_EQ(launches->count, gpu.accounting().positions_kernel1 +
                                 gpu.accounting().positions_kernel2);
}

TEST(TelemetryScan, FpgaLaunchHistogramCountsCompletedPositions) {
  const auto dataset = telemetry_dataset(93);
  omega::hw::fpga::FpgaOmegaBackend fpga(omega::hw::alveo_u200(), {});
  const auto result = omega::core::scan(
      dataset, telemetry_options(),
      [&] { return omega::core::borrow_backend(fpga); });
  const auto* launches =
      result.profile.telemetry.find_histogram("fpga.launch_modeled_seconds");
  ASSERT_NE(launches, nullptr);
  EXPECT_EQ(launches->count, valid_scores(result));
}

TEST(TelemetryScan, RetryHistogramsReconcileWithFaultCounters) {
  const auto dataset = telemetry_dataset(94);
  omega::util::fault::FaultPlan plan;
  plan.mode = omega::util::fault::FaultMode::KernelLaunch;
  plan.rate = 0.3;
  plan.seed = 777;
  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  const auto result = omega::core::scan(
      dataset, telemetry_options(), [&] {
        omega::hw::gpu::GpuBackendOptions backend_options;
        backend_options.fault_plan = plan;
        return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(
            spec, pool, backend_options);
      });
  const auto& faults = result.profile.faults;
  ASSERT_GT(faults.retries, 0u);
  const auto& tel = result.profile.telemetry;
  const auto* backoff = tel.find_histogram("scan.retry.backoff_seconds");
  ASSERT_NE(backoff, nullptr);
  EXPECT_EQ(backoff->count, faults.retries)
      << "one backoff sample per retry";
  const auto* attempts = tel.find_histogram("scan.retry.attempt_seconds");
  ASSERT_NE(attempts, nullptr);
  EXPECT_EQ(attempts->count, faults.errors_caught)
      << "one attempt-latency sample per caught error";
}

TEST(TelemetryScan, StreamHistogramsReconcileWithStreamProfile) {
  const auto dataset = telemetry_dataset(95, 160);
  omega::io::DatasetChunkReader reader(dataset);
  auto options = telemetry_options();
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  const auto result =
      omega::core::stream_scan(reader, options, stream_options);
  ASSERT_GT(result.profile.stream.chunks, 1u);
  const auto& tel = result.profile.telemetry;
  const auto* fetch = tel.find_histogram("stream.chunk_fetch_seconds");
  ASSERT_NE(fetch, nullptr);
  EXPECT_EQ(fetch->count, result.profile.stream.chunks)
      << "one fetch sample per chunk";
  const auto* chunk_scan = tel.find_histogram("stream.chunk_scan_seconds");
  ASSERT_NE(chunk_scan, nullptr);
  EXPECT_GE(chunk_scan->count, result.profile.stream.chunks);
  bool saw_overlap_gauge = false;
  for (const auto& [name, value] : tel.gauges) {
    if (name == "stream.io_overlap_ratio") {
      saw_overlap_gauge = true;
      EXPECT_DOUBLE_EQ(value, result.profile.stream.io_overlap_ratio());
    }
  }
  EXPECT_TRUE(saw_overlap_gauge);
}

TEST(TelemetryScan, MetricsDocumentCarriesTheTelemetryBlock) {
  const auto dataset = telemetry_dataset(96);
  const auto result = omega::core::scan(dataset, telemetry_options());
  const auto doc = omega::core::metrics::scan_metrics("tel", result.profile);
  const auto parsed = JsonValue::parse(doc.dump(0));
  EXPECT_EQ(parsed.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& tel = parsed.at("telemetry");
  ASSERT_TRUE(tel.is_object());
  const auto* hist = tel.at("histograms").find("scan.extend_seconds");
  ASSERT_NE(hist, nullptr);
  EXPECT_GT(hist->at("count").as_uint(), 0u);
}

// ---------------------------------------------------------------------------
// metrics-diff regression engine

JsonValue diff_fixture(double omega_seconds, double throughput,
                       const std::string& hostname = "host-a",
                       const std::string& cpu = "cpu-a") {
  auto doc = JsonValue::object();
  doc.set("schema", omega::core::metrics::kScanSchema);
  doc.set("schema_version", omega::core::metrics::kSchemaVersion);
  doc.set("name", "fixture");
  auto host = JsonValue::object();
  host.set("hostname", hostname);
  host.set("cpu", cpu);
  doc.set("host", std::move(host));
  auto stages = JsonValue::object();
  stages.set("omega_seconds", omega_seconds);
  stages.set("ld_seconds", 0.5);
  stages.set("tiny_seconds", 5e-6);
  doc.set("stages", std::move(stages));
  auto counters = JsonValue::object();
  counters.set("omega_evaluations", 1000);
  doc.set("counters", std::move(counters));
  doc.set("throughput_per_s", throughput);
  return doc;
}

TEST(MetricsDiff, DirectionInferredFromThePath) {
  using omega::core::metrics::Direction;
  using omega::core::metrics::metric_direction;
  EXPECT_EQ(metric_direction("stages.omega_seconds"),
            Direction::LowerIsBetter);
  EXPECT_EQ(metric_direction("fpga.stall_cycles"), Direction::LowerIsBetter);
  EXPECT_EQ(metric_direction("throughput_per_s"), Direction::HigherIsBetter);
  EXPECT_EQ(metric_direction("gpu.omega_throughput"),
            Direction::HigherIsBetter);
  // "ratio" outranks the lower-is-better tokens even when both appear.
  EXPECT_EQ(metric_direction("stream.io_overlap_ratio"),
            Direction::HigherIsBetter);
  EXPECT_EQ(metric_direction("counters.omega_evaluations"),
            Direction::Informational);
}

TEST(MetricsDiff, IdenticalDocumentsPass) {
  const auto report = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(1.0, 100.0));
  EXPECT_TRUE(report.error.empty());
  EXPECT_FALSE(report.regressed);
  EXPECT_EQ(report.regressions(), 0u);
  EXPECT_FALSE(report.deltas.empty());
}

TEST(MetricsDiff, StageTimeRegressionBeyondThresholdGates) {
  // 25% slower on a watched time metric with the default 20% threshold.
  const auto report = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(1.25, 100.0));
  EXPECT_TRUE(report.regressed);
  bool flagged = false;
  for (const auto& delta : report.deltas) {
    if (delta.path == "stages.omega_seconds") {
      flagged = delta.regressed;
      EXPECT_NEAR(delta.change, 0.25, 1e-12);
    }
  }
  EXPECT_TRUE(flagged);
  // 10% slower stays under the threshold.
  const auto ok = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(1.1, 100.0));
  EXPECT_FALSE(ok.regressed);
  // Improvements never gate.
  const auto faster = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(0.5, 100.0));
  EXPECT_FALSE(faster.regressed);
}

TEST(MetricsDiff, ThroughputDropGatesInTheOtherDirection) {
  const auto report = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(1.0, 70.0));
  EXPECT_TRUE(report.regressed);
  const auto faster = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(1.0, 130.0));
  EXPECT_FALSE(faster.regressed);
}

TEST(MetricsDiff, MinSecondsFloorSuppressesSubThresholdTimeNoise) {
  // tiny_seconds grows 10x but its baseline (5 us) is below the 100 us
  // floor, so relative noise there must never gate.
  auto baseline = diff_fixture(1.0, 100.0);
  auto candidate = diff_fixture(1.0, 100.0);
  candidate.at("stages").set("tiny_seconds", 5e-5);
  const auto report =
      omega::core::metrics::diff_metrics(baseline, candidate);
  EXPECT_FALSE(report.regressed);
}

TEST(MetricsDiff, HostMismatchRefusedUnlessAllowed) {
  const auto baseline = diff_fixture(1.0, 100.0, "host-a", "cpu-a");
  const auto candidate = diff_fixture(1.0, 100.0, "host-b", "cpu-b");
  const auto refused =
      omega::core::metrics::diff_metrics(baseline, candidate);
  EXPECT_FALSE(refused.error.empty());
  EXPECT_TRUE(refused.deltas.empty());
  EXPECT_FALSE(refused.regressed);
  omega::core::metrics::DiffOptions options;
  options.allow_cross_host = true;
  const auto allowed =
      omega::core::metrics::diff_metrics(baseline, candidate, options);
  EXPECT_TRUE(allowed.error.empty());
  EXPECT_FALSE(allowed.deltas.empty());
}

TEST(MetricsDiff, SchemaVersionMismatchRefused) {
  auto baseline = diff_fixture(1.0, 100.0);
  auto candidate = diff_fixture(1.0, 100.0);
  candidate.set("schema_version", omega::core::metrics::kSchemaVersion - 1);
  const auto report =
      omega::core::metrics::diff_metrics(baseline, candidate);
  EXPECT_FALSE(report.error.empty());
}

TEST(MetricsDiff, AllowSchemaDriftComparesIntersectingKeys) {
  // A v(N-1) baseline vs a vN candidate: with drift allowed the diff runs
  // over the intersecting keys instead of refusing, so old baselines stay
  // usable across a schema bump (e.g. v9 files against v10 "hetero" docs).
  auto baseline = diff_fixture(1.0, 100.0);
  baseline.set("schema_version", omega::core::metrics::kSchemaVersion - 1);
  auto candidate = diff_fixture(1.0, 100.0);
  auto hetero = JsonValue::object();
  hetero.set("enabled", false);
  candidate.set("hetero", std::move(hetero));

  omega::core::metrics::DiffOptions options;
  options.allow_schema_drift = true;
  const auto report =
      omega::core::metrics::diff_metrics(baseline, candidate, options);
  EXPECT_TRUE(report.error.empty());
  EXPECT_FALSE(report.deltas.empty());
  EXPECT_FALSE(report.regressed);
  // Candidate-only blocks never show up as deltas.
  for (const auto& delta : report.deltas) {
    EXPECT_EQ(delta.path.rfind("hetero", 0), std::string::npos) << delta.path;
  }
  // A genuine regression still gates across the drift.
  auto slower = diff_fixture(1.5, 100.0);
  EXPECT_TRUE(
      omega::core::metrics::diff_metrics(baseline, slower, options).regressed);
}

TEST(MetricsDiff, SchemaDriftDoesNotWaiveSchemaNameOrHostChecks) {
  omega::core::metrics::DiffOptions options;
  options.allow_schema_drift = true;
  // Different schema *name* is never comparable, drift or not.
  auto wrong_schema = diff_fixture(1.0, 100.0);
  wrong_schema.set("schema", "omega.bench");
  const auto refused_schema = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), wrong_schema, options);
  EXPECT_FALSE(refused_schema.error.empty());
  // Cross-host comparison stays refused unless allow_cross_host is set too.
  const auto refused_host = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0, "host-a", "cpu-a"),
      diff_fixture(1.0, 100.0, "host-b", "cpu-b"), options);
  EXPECT_FALSE(refused_host.error.empty());
}

TEST(MetricsDiff, WatchFiltersGateAndPromote) {
  // Watching only "counters" promotes the informational counter to gating
  // and ignores the blatant stage regression.
  omega::core::metrics::DiffOptions options;
  options.watch = {"counters"};
  auto baseline = diff_fixture(1.0, 100.0);
  auto regressed_stage = diff_fixture(10.0, 100.0);
  EXPECT_FALSE(
      omega::core::metrics::diff_metrics(baseline, regressed_stage, options)
          .regressed);
  auto changed_counter = diff_fixture(1.0, 100.0);
  changed_counter.at("counters").set("omega_evaluations", 2000);
  EXPECT_TRUE(
      omega::core::metrics::diff_metrics(baseline, changed_counter, options)
          .regressed);
}

TEST(MetricsDiff, RenderedTableListsRegressions) {
  const auto report = omega::core::metrics::diff_metrics(
      diff_fixture(1.0, 100.0), diff_fixture(2.0, 100.0));
  const std::string table = omega::core::metrics::render_diff_table(report);
  EXPECT_NE(table.find("stages.omega_seconds"), std::string::npos);
  EXPECT_NE(table.find("REGRESSED"), std::string::npos);
}

}  // namespace
