// Tests for the thread pool and the parallel loop helpers: full coverage of
// the index space, exception propagation, nested-free deadlock safety on a
// one-thread pool, and chunked iteration.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/thread_pool.h"

namespace {

using omega::par::ThreadPool;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_blocking(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  pool.run_blocking({});
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("boom"); });
  tasks.emplace_back([] {});
  EXPECT_THROW(pool.run_blocking(std::move(tasks)), std::runtime_error);
}

TEST(ThreadPool, AllTasksRunEvenWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.emplace_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("one failure");
    });
  }
  EXPECT_THROW(pool.run_blocking(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, RethrowsEarliestSubmittedError) {
  // Multiple tasks fail; run_blocking must rethrow the failure of the
  // earliest-submitted task, not whichever thread lost the race. With tasks
  // 7 and 2 both throwing, the batch must always report task 2.
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.emplace_back([i] {
        if (i == 7) throw std::runtime_error("task 7");
        if (i == 2) throw std::runtime_error("task 2");
      });
    }
    try {
      pool.run_blocking(std::move(tasks));
      FAIL() << "expected run_blocking to throw";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "task 2");
    }
  }
}

TEST(ThreadPool, WorkerThrownErrorReachesTheCaller) {
  // Deterministically force the *worker* thread (not the task-stealing
  // caller) to run the throwing task: a pool of size 1 gives two lanes, and
  // a 2-party barrier inside both tasks means each lane takes exactly one.
  // Whichever lane runs the throwing task, the caller must see the error.
  ThreadPool pool(1);
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mutex);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived >= 2; });
  };
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([&] {
    rendezvous();
    throw std::runtime_error("worker lane failure");
  });
  tasks.emplace_back([&] { rendezvous(); });
  try {
    pool.run_blocking(std::move(tasks));
    FAIL() << "expected run_blocking to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "worker lane failure");
  }
}

TEST(ThreadPool, NonStdExceptionPropagates) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::string("not derived from std::exception"); });
  EXPECT_THROW(pool.run_blocking(std::move(tasks)), std::string);
}

TEST(ThreadPool, SequentialBatches) {
  ThreadPool pool(2);
  int value = 0;  // unsynchronized on purpose: batches are barriers
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&value] { ++value; });
    pool.run_blocking(std::move(tasks));
  }
  EXPECT_EQ(value, 10);
}

class PoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizes, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(GetParam());
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  omega::par::parallel_for(pool, 0, n, 64, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(PoolSizes, ParallelForChunksPartitionTheRange) {
  ThreadPool pool(GetParam());
  const std::size_t n = 5'000;
  std::vector<std::atomic<int>> hits(n);
  omega::par::parallel_for_chunks(
      pool, 0, n, [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizes, ::testing::Values(1, 2, 4, 8));

TEST(ThreadPoolSubmit, FutureSynchronizesWithTheTask) {
  ThreadPool pool(1);
  int value = 0;
  auto done = pool.submit([&] { value = 42; });
  done.get();  // publishes the worker's write
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolSubmit, SerializedSubmitsRunInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    // One task in flight at a time — the streaming prefetch discipline.
    pool.submit([&order, i] { order.push_back(i); }).get();
  }
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolSubmit, ExceptionArrivesThroughTheFuture) {
  ThreadPool pool(2);
  auto failing = pool.submit([] { throw std::runtime_error("io failed"); });
  EXPECT_THROW(failing.get(), std::runtime_error);
  // The pool survives: batch dispatch and further submits still work.
  auto ok = pool.submit([] {});
  EXPECT_NO_THROW(ok.get());
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  int count = 0;
  omega::par::parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> one{0};
  omega::par::parallel_for(pool, 7, 8, 16, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelFor, ReductionMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100'000;
  std::atomic<long long> sum{0};
  omega::par::parallel_for_chunks(pool, 0, n,
                                  [&](std::size_t begin, std::size_t end) {
                                    long long local = 0;
                                    for (std::size_t i = begin; i < end; ++i) {
                                      local += static_cast<long long>(i);
                                    }
                                    sum.fetch_add(local);
                                  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
