// Tests for the thread pool and the parallel loop helpers: full coverage of
// the index space, exception propagation, nested-free deadlock safety on a
// one-thread pool, and chunked iteration.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "par/thread_pool.h"

namespace {

using omega::par::ThreadPool;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.emplace_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_blocking(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  pool.run_blocking({});
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  std::vector<std::function<void()>> tasks;
  tasks.emplace_back([] { throw std::runtime_error("boom"); });
  tasks.emplace_back([] {});
  EXPECT_THROW(pool.run_blocking(std::move(tasks)), std::runtime_error);
}

TEST(ThreadPool, AllTasksRunEvenWhenOneThrows) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.emplace_back([&ran, i] {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("one failure");
    });
  }
  EXPECT_THROW(pool.run_blocking(std::move(tasks)), std::runtime_error);
  EXPECT_EQ(ran.load(), 20);
}

TEST(ThreadPool, SequentialBatches) {
  ThreadPool pool(2);
  int value = 0;  // unsynchronized on purpose: batches are barriers
  for (int round = 0; round < 10; ++round) {
    std::vector<std::function<void()>> tasks;
    tasks.emplace_back([&value] { ++value; });
    pool.run_blocking(std::move(tasks));
  }
  EXPECT_EQ(value, 10);
}

class PoolSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PoolSizes, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(GetParam());
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  omega::par::parallel_for(pool, 0, n, 64, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(PoolSizes, ParallelForChunksPartitionTheRange) {
  ThreadPool pool(GetParam());
  const std::size_t n = 5'000;
  std::vector<std::atomic<int>> hits(n);
  omega::par::parallel_for_chunks(
      pool, 0, n, [&](std::size_t begin, std::size_t end) {
        ASSERT_LE(begin, end);
        for (std::size_t i = begin; i < end; ++i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        }
      });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PoolSizes, ::testing::Values(1, 2, 4, 8));

TEST(ParallelFor, EmptyAndSingleRanges) {
  ThreadPool pool(2);
  int count = 0;
  omega::par::parallel_for(pool, 5, 5, 1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  std::atomic<int> one{0};
  omega::par::parallel_for(pool, 7, 8, 16, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    one.fetch_add(1);
  });
  EXPECT_EQ(one.load(), 1);
}

TEST(ParallelFor, ReductionMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 100'000;
  std::atomic<long long> sum{0};
  omega::par::parallel_for_chunks(pool, 0, n,
                                  [&](std::size_t begin, std::size_t end) {
                                    long long local = 0;
                                    for (std::size_t i = begin; i < end; ++i) {
                                      local += static_cast<long long>(i);
                                    }
                                    sum.fetch_add(local);
                                  });
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
