// Streaming pipeline tests: chunk-reader contracts (plan validation, chunk
// content vs in-memory slices for all three readers), stream-plan geometry,
// and the headline guarantee — stream_scan is bitwise identical to scan()
// for every backend, chunk size, fault plan, and input format.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "core/omega_kernel_cpu.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "io/chunk_reader.h"
#include "io/ms_format.h"
#include "io/vcf_lite.h"
#include "sim/dataset_factory.h"
#include "sweep/detector.h"

namespace {

using omega::core::OmegaConfig;
using omega::core::ScannerOptions;
using omega::core::StreamScanOptions;
using omega::io::DatasetChunkReader;
using omega::io::SiteRange;

omega::io::Dataset stream_dataset(std::uint64_t seed, std::size_t sites = 160) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = 24,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 25.0,
                                   .seed = seed});
}

OmegaConfig stream_config() {
  OmegaConfig config;
  config.grid_size = 14;
  config.max_window = 200'000;
  config.min_window = 10'000;
  return config;
}

/// Bitwise comparison of two scans: every field of every score must match,
/// including the raw bit pattern of max_omega.
void expect_bitwise_equal(const omega::core::ScanResult& expected,
                          const omega::core::ScanResult& actual) {
  ASSERT_EQ(expected.scores.size(), actual.scores.size());
  for (std::size_t g = 0; g < expected.scores.size(); ++g) {
    const auto& e = expected.scores[g];
    const auto& a = actual.scores[g];
    EXPECT_EQ(e.valid, a.valid) << "grid " << g;
    EXPECT_EQ(e.quarantined, a.quarantined) << "grid " << g;
    EXPECT_EQ(e.position_bp, a.position_bp) << "grid " << g;
    if (!e.valid) continue;
    EXPECT_EQ(e.best_a, a.best_a) << "grid " << g;
    EXPECT_EQ(e.best_b, a.best_b) << "grid " << g;
    EXPECT_EQ(e.evaluated, a.evaluated) << "grid " << g;
    EXPECT_EQ(std::memcmp(&e.max_omega, &a.max_omega, sizeof(double)), 0)
        << "grid " << g << ": " << e.max_omega << " vs " << a.max_omega;
  }
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ----------------------------------------------------------- chunk readers --

TEST(ChunkReaderPlan, RejectsMalformedRanges) {
  const auto d = stream_dataset(11, 40);
  DatasetChunkReader reader(d);
  EXPECT_THROW(reader.plan({{5, 5}}), std::invalid_argument);   // empty
  EXPECT_THROW(reader.plan({{10, 5}}), std::invalid_argument);  // reversed
  EXPECT_THROW(reader.plan({{0, 41}}), std::invalid_argument);  // out of bounds
  EXPECT_THROW(reader.plan({{10, 20}, {5, 15}}),
               std::invalid_argument);  // begins step backwards
  EXPECT_THROW(reader.plan({{0, 30}, {10, 20}}),
               std::invalid_argument);  // ends step backwards
}

TEST(ChunkReaderPlan, NextWithoutPlanIsExhausted) {
  const auto d = stream_dataset(12, 30);
  DatasetChunkReader reader(d);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(ChunkReaderDataset, ChunksMatchInMemorySlices) {
  const auto d = stream_dataset(13, 50);
  DatasetChunkReader reader(d);
  EXPECT_EQ(reader.index().num_sites(), d.num_sites());
  EXPECT_EQ(reader.index().num_samples, d.num_samples());
  EXPECT_EQ(reader.index().locus_length_bp, d.locus_length_bp());

  // Overlapping ranges, as the stream planner produces them.
  reader.plan({{0, 20}, {12, 35}, {30, 50}});
  std::size_t expected_index = 0;
  for (const SiteRange range : {SiteRange{0, 20}, SiteRange{12, 35},
                                SiteRange{30, 50}}) {
    const auto chunk = reader.next();
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(chunk->first_site, range.begin);
    EXPECT_EQ(chunk->index, expected_index++);
    ASSERT_EQ(chunk->dataset.num_sites(), range.size());
    EXPECT_EQ(chunk->dataset.num_samples(), d.num_samples());
    EXPECT_EQ(chunk->dataset.locus_length_bp(), d.locus_length_bp());
    for (std::size_t s = 0; s < range.size(); ++s) {
      EXPECT_EQ(chunk->dataset.position(s), d.position(range.begin + s));
      EXPECT_EQ(chunk->dataset.site(s), d.site(range.begin + s));
    }
  }
  EXPECT_FALSE(reader.next().has_value());
}

TEST(VcfChunkReaderTest, IndexAndChunksMatchInMemoryLoad) {
  const auto d = stream_dataset(14, 60);
  const std::string path = temp_path("omega_stream_test.vcf");
  omega::io::write_vcf_file(path, d);

  omega::io::VcfLoadReport report;
  const auto loaded = omega::io::read_vcf_file(path, &report);

  omega::io::VcfChunkReader reader(path);
  EXPECT_EQ(reader.index().positions_bp, loaded.positions());
  EXPECT_EQ(reader.index().num_samples, loaded.num_samples());
  EXPECT_EQ(reader.index().locus_length_bp, loaded.locus_length_bp());
  EXPECT_EQ(reader.load_report().records_total, report.records_total);
  EXPECT_EQ(reader.load_report().records_skipped, report.records_skipped);

  const std::size_t n = loaded.num_sites();
  reader.plan({{0, n / 2 + 4}, {n / 3, n}});
  for (const SiteRange range : {SiteRange{0, n / 2 + 4}, SiteRange{n / 3, n}}) {
    const auto chunk = reader.next();
    ASSERT_TRUE(chunk.has_value());
    ASSERT_EQ(chunk->dataset.num_sites(), range.size());
    for (std::size_t s = 0; s < range.size(); ++s) {
      EXPECT_EQ(chunk->dataset.position(s), loaded.position(range.begin + s));
      EXPECT_EQ(chunk->dataset.site(s), loaded.site(range.begin + s));
    }
  }
  std::filesystem::remove(path);
}

TEST(VcfChunkReaderTest, NextBeforePlanThrows) {
  const auto d = stream_dataset(15, 20);
  const std::string path = temp_path("omega_stream_noplan.vcf");
  omega::io::write_vcf_file(path, d);
  omega::io::VcfChunkReader reader(path);
  // plan() was never called: the pass-2 parser does not exist yet, but the
  // reader must not silently yield data either.
  reader.plan({{0, d.num_sites()}});
  ASSERT_TRUE(reader.next().has_value());
  std::filesystem::remove(path);
}

TEST(MsChunkReaderTest, IndexAndChunksMatchInMemoryLoad) {
  const auto d = stream_dataset(16, 70);
  const std::string path = temp_path("omega_stream_test.ms");
  omega::io::write_ms_file(path, {d});

  omega::io::MsReadOptions options;
  options.locus_length_bp = d.locus_length_bp();
  const auto loaded = omega::io::read_ms_file(path, options).at(0);

  omega::io::MsChunkReader reader(path, options);
  EXPECT_EQ(reader.index().positions_bp, loaded.positions());
  EXPECT_EQ(reader.index().num_samples, loaded.num_samples());
  EXPECT_EQ(reader.index().locus_length_bp, loaded.locus_length_bp());

  const std::size_t n = loaded.num_sites();
  reader.plan({{0, n / 2}, {n / 4, n}});
  for (const SiteRange range : {SiteRange{0, n / 2}, SiteRange{n / 4, n}}) {
    const auto chunk = reader.next();
    ASSERT_TRUE(chunk.has_value());
    ASSERT_EQ(chunk->dataset.num_sites(), range.size());
    for (std::size_t s = 0; s < range.size(); ++s) {
      EXPECT_EQ(chunk->dataset.position(s), loaded.position(range.begin + s));
      EXPECT_EQ(chunk->dataset.site(s), loaded.site(range.begin + s));
    }
  }
  std::filesystem::remove(path);
}

TEST(MsChunkReaderTest, MissingReplicateThrows) {
  const auto d = stream_dataset(17, 20);
  const std::string path = temp_path("omega_stream_onerep.ms");
  omega::io::write_ms_file(path, {d});
  EXPECT_THROW(omega::io::MsChunkReader(path, {}, 3), std::runtime_error);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------- stream plan --

TEST(StreamPlanTest, SingleChunkWhenEverythingFits) {
  const auto d = stream_dataset(21, 80);
  const auto plan = omega::core::plan_stream_chunks(
      d.positions(), stream_config(), d.num_sites());
  ASSERT_EQ(plan.chunks.size(), 1u);
  EXPECT_EQ(plan.chunks[0].grid_begin, 0u);
  EXPECT_EQ(plan.chunks[0].grid_end, plan.grid.size());
  EXPECT_EQ(plan.overlap_sites(), 0u);
}

TEST(StreamPlanTest, ChunksCoverGridAndContainTheirWindows) {
  const auto d = stream_dataset(22, 200);
  for (const std::size_t chunk_sites : {16u, 40u, 90u}) {
    const auto plan = omega::core::plan_stream_chunks(
        d.positions(), stream_config(), chunk_sites);
    ASSERT_FALSE(plan.chunks.empty());
    // Grid ranges tile [0, grid.size()) contiguously.
    EXPECT_EQ(plan.chunks.front().grid_begin, 0u);
    EXPECT_EQ(plan.chunks.back().grid_end, plan.grid.size());
    for (std::size_t k = 0; k < plan.chunks.size(); ++k) {
      const auto& step = plan.chunks[k];
      if (k > 0) EXPECT_EQ(step.grid_begin, plan.chunks[k - 1].grid_end);
      ASSERT_LT(step.grid_begin, step.grid_end);
      // Every valid position is fully contained in its chunk's site range.
      for (std::size_t g = step.grid_begin; g < step.grid_end; ++g) {
        if (!plan.grid[g].valid) continue;
        EXPECT_GE(plan.grid[g].lo, step.sites.begin) << "grid " << g;
        EXPECT_LT(plan.grid[g].hi, step.sites.end) << "grid " << g;
      }
      // Within-target chunks respect the memory bound; oversized ones hold
      // exactly one window span.
      if (step.sites.size() > chunk_sites) {
        bool single_window = false;
        for (std::size_t g = step.grid_begin; g < step.grid_end; ++g) {
          if (!plan.grid[g].valid) continue;
          single_window = plan.grid[g].hi + 1 - plan.grid[g].lo ==
                          step.sites.size();
          break;  // first valid position anchors the chunk
        }
        EXPECT_TRUE(single_window)
            << "oversized chunk " << k << " is not a single window";
      }
    }
  }
}

TEST(StreamPlanTest, OverlapCountsSharedSites) {
  omega::core::StreamPlan plan;
  plan.chunks.push_back({SiteRange{0, 10}, 0, 1});
  plan.chunks.push_back({SiteRange{6, 16}, 1, 2});   // 4 shared
  plan.chunks.push_back({SiteRange{16, 20}, 2, 3});  // disjoint
  EXPECT_EQ(plan.overlap_sites(), 4u);
}

TEST(StreamOptionsTest, Validation) {
  StreamScanOptions bad;
  bad.chunk_sites = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  // threads > 1 used to be rejected; the span engine now runs it. Scores
  // must match the serial stream bitwise.
  const auto d = stream_dataset(23, 40);
  ScannerOptions options;
  options.config = stream_config();
  DatasetChunkReader serial_reader(d);
  const auto serial = omega::core::stream_scan(serial_reader, options);
  options.threads = 4;
  DatasetChunkReader mt_reader(d);
  const auto threaded = omega::core::stream_scan(mt_reader, options);
  ASSERT_EQ(threaded.scores.size(), serial.scores.size());
  for (std::size_t i = 0; i < serial.scores.size(); ++i) {
    EXPECT_EQ(threaded.scores[i].valid, serial.scores[i].valid);
    EXPECT_EQ(threaded.scores[i].max_omega, serial.scores[i].max_omega);
  }
  EXPECT_EQ(threaded.profile.sched.workers, 4u);
}

// ------------------------------------------------- bitwise scan equivalence --

TEST(StreamScanEquivalence, CpuBitwiseAcrossChunkSizes) {
  const auto d = stream_dataset(31, 220);
  ScannerOptions options;
  options.config = stream_config();
  const auto reference = omega::core::scan(d, options);

  // 1000 >= num_sites: single chunk. 60: several chunks. 12: smaller than
  // most window spans, so windows are split across planned chunk seams and
  // get dedicated oversized chunks.
  for (const std::size_t chunk_sites : {1000u, 60u, 12u}) {
    DatasetChunkReader reader(d);
    StreamScanOptions stream_options;
    stream_options.chunk_sites = chunk_sites;
    const auto streamed =
        omega::core::stream_scan(reader, options, stream_options);
    expect_bitwise_equal(reference, streamed);
    EXPECT_EQ(streamed.profile.stream.chunk_sites_target, chunk_sites);
    EXPECT_EQ(streamed.profile.stream.total_sites, d.num_sites());
    EXPECT_EQ(streamed.profile.stream.failed_chunks, 0u);
  }
}

TEST(StreamScanEquivalence, SingleBufferedMatchesDoubleBuffered) {
  const auto d = stream_dataset(32, 180);
  ScannerOptions options;
  options.config = stream_config();
  const auto reference = omega::core::scan(d, options);

  DatasetChunkReader reader(d);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 50;
  stream_options.double_buffer = false;
  const auto streamed =
      omega::core::stream_scan(reader, options, stream_options);
  expect_bitwise_equal(reference, streamed);
}

TEST(StreamScanEquivalence, SeamCarryoverReusesTheMatrix) {
  const auto d = stream_dataset(33, 200);
  ScannerOptions options;
  options.config = stream_config();
  DatasetChunkReader reader(d);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 80;
  const auto streamed =
      omega::core::stream_scan(reader, options, stream_options);
  ASSERT_GT(streamed.profile.stream.chunks, 1u);
  // Consecutive chunks overlap, so at least one seam relocates the live
  // matrix instead of rebuilding it.
  EXPECT_GT(streamed.profile.stream.seam_carryovers, 0u);
  EXPECT_GT(streamed.profile.stream.overlap_sites, 0u);
  EXPECT_LT(streamed.profile.stream.peak_resident_sites,
            2 * static_cast<std::uint64_t>(d.num_sites()));
}

TEST(StreamScanEquivalence, MsFileStreamMatchesInMemoryLoad) {
  const auto d = stream_dataset(34, 150);
  const std::string path = temp_path("omega_stream_equiv.ms");
  omega::io::write_ms_file(path, {d});
  omega::io::MsReadOptions ms_options;
  ms_options.locus_length_bp = d.locus_length_bp();

  ScannerOptions options;
  options.config = stream_config();
  const auto loaded = omega::io::read_ms_file(path, ms_options).at(0);
  const auto reference = omega::core::scan(loaded, options);

  omega::io::MsChunkReader reader(path, ms_options);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 45;
  const auto streamed =
      omega::core::stream_scan(reader, options, stream_options);
  expect_bitwise_equal(reference, streamed);
  std::filesystem::remove(path);
}

TEST(StreamScanEquivalence, VcfFileStreamMatchesInMemoryLoad) {
  const auto d = stream_dataset(35, 150);
  const std::string path = temp_path("omega_stream_equiv.vcf");
  omega::io::write_vcf_file(path, d);

  ScannerOptions options;
  options.config = stream_config();
  const auto loaded = omega::io::read_vcf_file(path);
  const auto reference = omega::core::scan(loaded, options);

  omega::io::VcfChunkReader reader(path);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 45;
  const auto streamed =
      omega::core::stream_scan(reader, options, stream_options);
  expect_bitwise_equal(reference, streamed);
  std::filesystem::remove(path);
}

TEST(StreamScanEquivalence, GpuSimBackendBitwise) {
  const auto d = stream_dataset(36, 150);
  omega::sweep::DetectorOptions options;
  options.config = stream_config();
  options.backend = omega::sweep::Backend::GpuSim;
  const auto reference = omega::sweep::detect_sweeps(d, options);

  DatasetChunkReader reader(d);
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 50;
  const auto streamed =
      omega::sweep::detect_sweeps_stream(reader, options, stream_options);

  ASSERT_EQ(reference.candidates.size(), streamed.candidates.size());
  for (std::size_t i = 0; i < reference.candidates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reference.candidates[i].omega,
                          &streamed.candidates[i].omega, sizeof(double)),
              0);
    EXPECT_EQ(reference.candidates[i].position_bp,
              streamed.candidates[i].position_bp);
    EXPECT_EQ(reference.candidates[i].window_start_bp,
              streamed.candidates[i].window_start_bp);
    EXPECT_EQ(reference.candidates[i].window_end_bp,
              streamed.candidates[i].window_end_bp);
  }
  EXPECT_EQ(reference.profile.positions_scanned,
            streamed.profile.positions_scanned);
  EXPECT_EQ(reference.profile.omega_evaluations,
            streamed.profile.omega_evaluations);
  EXPECT_EQ(reference.backend_name, streamed.backend_name);
}

TEST(StreamScanEquivalence, FpgaSimBackendBitwise) {
  const auto d = stream_dataset(37, 150);
  omega::sweep::DetectorOptions options;
  options.config = stream_config();
  options.backend = omega::sweep::Backend::FpgaSim;
  const auto reference = omega::sweep::detect_sweeps(d, options);

  DatasetChunkReader reader(d);
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 50;
  const auto streamed =
      omega::sweep::detect_sweeps_stream(reader, options, stream_options);

  ASSERT_EQ(reference.candidates.size(), streamed.candidates.size());
  for (std::size_t i = 0; i < reference.candidates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reference.candidates[i].omega,
                          &streamed.candidates[i].omega, sizeof(double)),
              0);
  }
  EXPECT_EQ(reference.profile.omega_evaluations,
            streamed.profile.omega_evaluations);
}

TEST(StreamScanEquivalence, CpuThreadedStreamBitwise) {
  // Streamed multithreaded compute (span engine per chunk) must match the
  // in-memory threaded scan bitwise, same as the single-threaded backends.
  const auto d = stream_dataset(38, 120);
  omega::sweep::DetectorOptions options;
  options.config = stream_config();
  options.backend = omega::sweep::Backend::CpuThreaded;
  options.threads = 3;
  const auto reference = omega::sweep::detect_sweeps(d, options);

  DatasetChunkReader reader(d);
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  const auto streamed =
      omega::sweep::detect_sweeps_stream(reader, options, stream_options);

  EXPECT_EQ(streamed.backend_name, "cpu-mt");
  ASSERT_EQ(reference.candidates.size(), streamed.candidates.size());
  for (std::size_t i = 0; i < reference.candidates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reference.candidates[i].omega,
                          &streamed.candidates[i].omega, sizeof(double)),
              0);
  }
  EXPECT_EQ(reference.profile.omega_evaluations,
            streamed.profile.omega_evaluations);
}

TEST(StreamScanEquivalence, FaultInjectionSequencesMatch) {
  // Same fault plan on both paths: the single backend instance consumes the
  // PRNG in the same per-position order, so retries and recovered scores are
  // bitwise identical too.
  const auto d = stream_dataset(39, 150);
  omega::sweep::DetectorOptions options;
  options.config = stream_config();
  options.backend = omega::sweep::Backend::GpuSim;
  options.fault_plan.mode = omega::util::fault::FaultMode::TransientNan;
  options.fault_plan.rate = 0.35;
  options.fault_plan.seed = 99;
  const auto reference = omega::sweep::detect_sweeps(d, options);
  ASSERT_GT(reference.profile.faults.faults_injected, 0u);

  DatasetChunkReader reader(d);
  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  const auto streamed =
      omega::sweep::detect_sweeps_stream(reader, options, stream_options);

  EXPECT_EQ(reference.profile.faults.faults_injected,
            streamed.profile.faults.faults_injected);
  EXPECT_EQ(reference.profile.faults.retries, streamed.profile.faults.retries);
  ASSERT_EQ(reference.candidates.size(), streamed.candidates.size());
  for (std::size_t i = 0; i < reference.candidates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reference.candidates[i].omega,
                          &streamed.candidates[i].omega, sizeof(double)),
              0);
  }
}

// ------------------------------------------------------ chunk-level faults --

/// Backend whose first `failures` max_omega calls throw a non-BackendError
/// exception (the class the per-position recovery engine does NOT absorb),
/// then delegates to the CPU loop.
class BrittleBackend final : public omega::core::OmegaBackend {
 public:
  explicit BrittleBackend(std::size_t failures) : failures_(failures) {}

  [[nodiscard]] std::string name() const override { return "brittle"; }

  omega::core::OmegaResult max_omega(
      const omega::core::DpMatrix& m,
      const omega::core::GridPosition& position) override {
    if (failures_ > 0) {
      --failures_;
      throw std::logic_error("brittle backend: simulated driver bug");
    }
    return cpu_.max_omega(m, position);
  }

 private:
  std::size_t failures_;
  omega::core::CpuOmegaBackend cpu_;
};

TEST(StreamScanFaults, ChunkRetryRecoversTransientFailure) {
  const auto d = stream_dataset(41, 150);
  ScannerOptions options;
  options.config = stream_config();
  const auto reference = omega::core::scan(d, options);

  DatasetChunkReader reader(d);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 60;
  const auto streamed = omega::core::stream_scan(
      reader, options, stream_options,
      [] { return std::make_unique<BrittleBackend>(1); });

  // One throw during chunk 0, retried from a rebuilt matrix; every score is
  // still produced and bitwise identical (the CPU loop is deterministic).
  EXPECT_EQ(streamed.profile.stream.failed_chunks, 0u);
  EXPECT_EQ(streamed.profile.faults.quarantined_positions, 0u);
  expect_bitwise_equal(reference, streamed);
}

TEST(StreamScanFaults, ExhaustedRetriesQuarantineTheChunkAndContinue) {
  const auto d = stream_dataset(42, 150);
  ScannerOptions options;
  options.config = stream_config();

  DatasetChunkReader reader(d);
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 60;
  stream_options.chunk_retries = 1;
  // Enough failures to sink chunk 0's attempts (first position of each
  // attempt throws) but leave later chunks healthy.
  const auto streamed = omega::core::stream_scan(
      reader, options, stream_options,
      [] { return std::make_unique<BrittleBackend>(2); });

  EXPECT_EQ(streamed.profile.stream.failed_chunks, 1u);
  EXPECT_GT(streamed.profile.faults.quarantined_positions, 0u);

  // The stream never aborts: later chunks still score.
  bool any_valid = false;
  bool any_quarantined = false;
  for (const auto& score : streamed.scores) {
    any_valid |= score.valid;
    any_quarantined |= score.quarantined;
    EXPECT_FALSE(score.valid && score.quarantined);
  }
  EXPECT_TRUE(any_valid);
  EXPECT_TRUE(any_quarantined);
}

TEST(StreamStatsTest, IoOverlapRatioClamps) {
  omega::core::StreamStats stats;
  EXPECT_EQ(stats.io_overlap_ratio(), 0.0);  // no IO at all
  stats.io_seconds = 2.0;
  stats.io_stall_seconds = 0.5;
  EXPECT_DOUBLE_EQ(stats.io_overlap_ratio(), 0.75);
  stats.io_stall_seconds = 3.0;  // stall can exceed io (wait on a slow queue)
  EXPECT_EQ(stats.io_overlap_ratio(), 0.0);
}

}  // namespace
