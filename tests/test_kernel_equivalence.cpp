// Kernel-equivalence property tests for the dispatched CPU omega kernels
// (core/omega_kernel_cpu.h): the portable and AVX2 fp64 bodies must reproduce
// the scalar reference argmax exactly and its scores within ulp-scaled
// tolerance; the fp32 bodies must be bit-identical to the GPU/FPGA reference
// arithmetic across all kernel kinds. AVX2 cases skip cleanly on hosts (or
// builds) that cannot run the AVX2 translation unit.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/metrics_json.h"
#include "core/omega_kernel_cpu.h"
#include "core/omega_math.h"
#include "core/omega_search.h"
#include "core/scanner.h"
#include "io/dataset.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/prng.h"

namespace {

using omega::core::CpuKernelKind;
using omega::core::DpMatrix;
using omega::core::GridPosition;
using omega::core::OmegaConfig;
using omega::core::OmegaKernelScratch;
using omega::core::OmegaResult;
using omega::io::Dataset;

Dataset kernel_dataset(std::uint64_t seed, std::size_t sites = 120,
                       std::size_t samples = 40) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = samples,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 30.0,
                                   .seed = seed});
}

Dataset missing_dataset(std::uint64_t seed, std::size_t sites = 90,
                        double missing_rate = 0.12) {
  Dataset base = kernel_dataset(seed, sites, 36);
  omega::util::Xoshiro256 rng(seed ^ 0xfeed);
  std::vector<std::int64_t> positions(base.positions());
  std::vector<std::vector<std::uint8_t>> rows(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    rows[s] = base.site(s);
    for (auto& allele : rows[s]) {
      if (rng.uniform() < missing_rate) allele = Dataset::kMissing;
    }
  }
  return Dataset(std::move(positions), std::move(rows),
                 base.locus_length_bp());
}

OmegaConfig kernel_config() {
  OmegaConfig config;
  config.grid_size = 10;
  config.max_window = 300'000;
  config.min_window = 10'000;
  return config;
}

/// Dataset + LD engine + a DP matrix rebuilt per position.
struct KernelFixture {
  explicit KernelFixture(Dataset data)
      : dataset(std::move(data)), snps(dataset), engine(snps) {}

  void build(const GridPosition& position) {
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
  }

  Dataset dataset;
  omega::ld::SnpMatrix snps;
  omega::ld::PopcountLd engine;
  DpMatrix m;
};

/// Reference vs candidate: identical work and argmax, scores within a
/// relative tolerance (the fused-divide kernels differ from the 3-divide
/// reference only in rounding).
void expect_equivalent(const OmegaResult& ref, const OmegaResult& got,
                       const char* label) {
  EXPECT_EQ(got.evaluated, ref.evaluated) << label;
  EXPECT_NEAR(got.max_omega, ref.max_omega, 1e-9 * (1.0 + ref.max_omega))
      << label;
  EXPECT_EQ(got.best_a, ref.best_a) << label;
  EXPECT_EQ(got.best_b, ref.best_b) << label;
}

void check_kernel_on_dataset(Dataset dataset, CpuKernelKind kind) {
  KernelFixture fx(std::move(dataset));
  const auto grid = omega::core::build_grid(fx.dataset, kernel_config());
  OmegaKernelScratch scratch;
  std::size_t checked = 0;
  for (const auto& position : grid) {
    if (!position.valid) continue;
    fx.build(position);
    const OmegaResult ref = omega::core::max_omega_search(fx.m, position);
    const OmegaResult got =
        omega::core::omega_kernel_search(fx.m, position, kind, scratch);
    expect_equivalent(ref, got, omega::core::cpu_kernel_name(kind));
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(KernelEquivalence, PortableMatchesScalarOnRandomGrids) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    check_kernel_on_dataset(kernel_dataset(seed), CpuKernelKind::Portable);
  }
}

TEST(KernelEquivalence, Avx2MatchesScalarOnRandomGrids) {
  if (!omega::core::cpu_kernel_avx2_available()) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this binary/host";
  }
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    check_kernel_on_dataset(kernel_dataset(seed), CpuKernelKind::Avx2);
  }
}

TEST(KernelEquivalence, PortableMatchesScalarWithMissingData) {
  check_kernel_on_dataset(missing_dataset(11), CpuKernelKind::Portable);
}

TEST(KernelEquivalence, Avx2MatchesScalarWithMissingData) {
  if (!omega::core::cpu_kernel_avx2_available()) {
    GTEST_SKIP() << "AVX2 kernel unavailable on this binary/host";
  }
  check_kernel_on_dataset(missing_dataset(11), CpuKernelKind::Avx2);
}

// Degenerate geometry: positions allowing l == 1 and r == 1 windows
// (pairs == 0 must score omega = 0, not NaN) and odd left-region widths that
// exercise every vector-tail length.
TEST(KernelEquivalence, DegenerateWindowsAndTails) {
  KernelFixture fx(kernel_dataset(5, 40, 24));
  GridPosition position;
  position.valid = true;
  position.position_bp = 0;
  for (std::size_t c = 1; c + 2 < 40; c += 3) {
    position.lo = c >= 8 ? c - 8 : 0;
    position.c = c;
    position.a_max = c;      // allows a == c -> l == 1
    position.b_min = c + 1;  // allows b == c+1 -> r == 1
    position.hi = std::min<std::size_t>(c + 9, 39);
    fx.build(position);
    OmegaKernelScratch scratch;
    const OmegaResult ref = omega::core::max_omega_search(fx.m, position);
    expect_equivalent(ref,
                      omega::core::omega_kernel_search(
                          fx.m, position, CpuKernelKind::Portable, scratch),
                      "portable-degenerate");
    expect_equivalent(ref,
                      omega::core::omega_kernel_search(
                          fx.m, position, CpuKernelKind::Scalar, scratch),
                      "scalar-degenerate");
    if (omega::core::cpu_kernel_avx2_available()) {
      expect_equivalent(ref,
                        omega::core::omega_kernel_search(
                            fx.m, position, CpuKernelKind::Avx2, scratch),
                        "avx2-degenerate");
    }
  }
}

// Zero cross-sum: left sites carry one haplotype pattern, right sites an
// uncorrelated one, so every cross-region r2 is exactly 0 and the Eq. (2)
// denominator collapses to the eps guard — the pole-adjacent regime where
// the fused-divide algebra is most stressed.
TEST(KernelEquivalence, ZeroCrossSumRegion) {
  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<std::int64_t> positions;
  for (int s = 0; s < 4; ++s) {
    rows.push_back({1, 1, 0, 0});  // left block: mutually identical
    positions.push_back(100 * (s + 1));
  }
  for (int s = 0; s < 4; ++s) {
    rows.push_back({1, 0, 1, 0});  // right block: r2 vs left block == 0
    positions.push_back(100 * (s + 5));
  }
  KernelFixture fx(Dataset(std::move(positions), std::move(rows), 1'000));

  GridPosition position;
  position.valid = true;
  position.lo = 0;
  position.c = 3;
  position.a_max = 2;
  position.b_min = 5;
  position.hi = 7;
  fx.build(position);
  // Sanity: the best window's cross-sum really is zero.
  EXPECT_DOUBLE_EQ(fx.m.at_fast(7, 0) - fx.m.at_fast(3, 0) -
                       fx.m.at_fast(7, 4),
                   0.0);

  OmegaKernelScratch scratch;
  const OmegaResult ref = omega::core::max_omega_search(fx.m, position);
  EXPECT_GT(ref.max_omega, 0.0);

  // This construction makes several windows score exactly 1/eps, so the
  // argmax is a multi-way tie that the fused-divide kernels may break at a
  // different ulp than the 3-divide reference. Require the same max (within
  // tolerance) and that the reported window is a co-maximizer under the
  // reference arithmetic — not a specific tie winner.
  const auto check_comaximal = [&](const OmegaResult& got, const char* label) {
    EXPECT_EQ(got.evaluated, ref.evaluated) << label;
    EXPECT_NEAR(got.max_omega, ref.max_omega, 1e-9 * (1.0 + ref.max_omega))
        << label;
    const std::size_t a = got.best_a, b = got.best_b;
    const double ls = fx.m.at_fast(position.c, a);
    const double rs = fx.m.at_fast(b, position.c + 1);
    const double cross = fx.m.at_fast(b, a) - ls - rs;
    const double w = omega::core::omega_from_sums(
        ls, rs, cross, position.c - a + 1, b - position.c);
    EXPECT_NEAR(w, ref.max_omega, 1e-9 * (1.0 + ref.max_omega)) << label;
  };
  check_comaximal(omega::core::omega_kernel_search(
                      fx.m, position, CpuKernelKind::Portable, scratch),
                  "portable-zero-cross");
  if (omega::core::cpu_kernel_avx2_available()) {
    check_comaximal(omega::core::omega_kernel_search(
                        fx.m, position, CpuKernelKind::Avx2, scratch),
                    "avx2-zero-cross");
  }
}

// The fp32 kernel runs the exact GPU/FPGA datapath arithmetic; every kernel
// kind must agree bit-for-bit (no FMA-contractible patterns in the op
// sequence) and match a literal omega_from_sums_f loop.
TEST(KernelEquivalence, F32KernelsBitwiseIdentical) {
  KernelFixture fx(kernel_dataset(13));
  const auto grid = omega::core::build_grid(fx.dataset, kernel_config());
  std::size_t checked = 0;
  for (const auto& position : grid) {
    if (!position.valid) continue;
    fx.build(position);
    const auto buffers = omega::core::pack_position(fx.m, position);

    // Literal reference loop in the f32 scan order (ai-major, bi-ascending).
    OmegaResult ref;
    float best = 0.0f;
    for (std::size_t ai = 0; ai < buffers.num_left; ++ai) {
      for (std::size_t bi = 0; bi < buffers.num_right; ++bi) {
        const float within = buffers.ls[ai] + buffers.rs[bi];
        const float w = omega::core::omega_from_sums_f(
            buffers.ls[ai], buffers.rs[bi],
            buffers.total[ai * buffers.num_right + bi] - within,
            buffers.l_counts[ai], buffers.r_counts[bi]);
        ++ref.evaluated;
        if (w > best) {
          best = w;
          ref.best_a = position.lo + ai;
          ref.best_b = position.b_min + bi;
        }
      }
    }
    ref.max_omega = static_cast<double>(best);

    const auto scalar = omega::core::omega_kernel_search_f32(
        buffers, position, CpuKernelKind::Scalar);
    const auto portable = omega::core::omega_kernel_search_f32(
        buffers, position, CpuKernelKind::Portable);
    EXPECT_EQ(scalar.evaluated, ref.evaluated);
    EXPECT_EQ(scalar.max_omega, ref.max_omega);  // bitwise: same arithmetic
    EXPECT_EQ(scalar.best_a, ref.best_a);
    EXPECT_EQ(scalar.best_b, ref.best_b);
    EXPECT_EQ(portable.max_omega, ref.max_omega);
    EXPECT_EQ(portable.best_a, ref.best_a);
    EXPECT_EQ(portable.best_b, ref.best_b);
    if (omega::core::cpu_kernel_avx2_available()) {
      const auto avx2 = omega::core::omega_kernel_search_f32(
          buffers, position, CpuKernelKind::Avx2);
      EXPECT_EQ(avx2.evaluated, ref.evaluated);
      EXPECT_EQ(avx2.max_omega, ref.max_omega);
      EXPECT_EQ(avx2.best_a, ref.best_a);
      EXPECT_EQ(avx2.best_b, ref.best_b);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(KernelEquivalence, ParallelMatchesSequentialPerKind) {
  KernelFixture fx(kernel_dataset(17));
  const auto grid = omega::core::build_grid(fx.dataset, kernel_config());
  omega::par::ThreadPool pool(3);
  std::vector<OmegaKernelScratch> lane_scratch;
  OmegaKernelScratch scratch;
  std::vector<CpuKernelKind> kinds = {CpuKernelKind::Scalar,
                                      CpuKernelKind::Portable};
  if (omega::core::cpu_kernel_avx2_available()) {
    kinds.push_back(CpuKernelKind::Avx2);
  }
  for (const auto& position : grid) {
    if (!position.valid) continue;
    fx.build(position);
    for (CpuKernelKind kind : kinds) {
      const OmegaResult seq =
          omega::core::omega_kernel_search(fx.m, position, kind, scratch);
      const OmegaResult par = omega::core::omega_kernel_search_parallel(
          pool, fx.m, position, kind, lane_scratch);
      EXPECT_EQ(par.evaluated, seq.evaluated);
      // Same kernel kind: the b-chunked reduce is bit-identical, including
      // tie-breaking.
      EXPECT_DOUBLE_EQ(par.max_omega, seq.max_omega)
          << omega::core::cpu_kernel_name(kind);
      EXPECT_EQ(par.best_a, seq.best_a);
      EXPECT_EQ(par.best_b, seq.best_b);
    }
  }
}

TEST(KernelDispatch, ResolveSemantics) {
  using omega::core::resolve_cpu_kernel;
  EXPECT_EQ(resolve_cpu_kernel(CpuKernelKind::Scalar), CpuKernelKind::Scalar);
  EXPECT_EQ(resolve_cpu_kernel(CpuKernelKind::Portable),
            CpuKernelKind::Portable);
  const CpuKernelKind autod = resolve_cpu_kernel(CpuKernelKind::Auto);
  EXPECT_NE(autod, CpuKernelKind::Auto);
  EXPECT_NE(autod, CpuKernelKind::Scalar);  // scalar is opt-in only
  if (omega::core::cpu_kernel_avx2_available()) {
    EXPECT_EQ(autod, CpuKernelKind::Avx2);
    EXPECT_EQ(resolve_cpu_kernel(CpuKernelKind::Avx2), CpuKernelKind::Avx2);
  } else {
    EXPECT_EQ(autod, CpuKernelKind::Portable);
    EXPECT_THROW((void)resolve_cpu_kernel(CpuKernelKind::Avx2),
                 std::runtime_error);
  }
}

TEST(KernelDispatch, NameRoundTrip) {
  using omega::core::cpu_kernel_from_name;
  using omega::core::cpu_kernel_name;
  for (CpuKernelKind kind : {CpuKernelKind::Auto, CpuKernelKind::Scalar,
                             CpuKernelKind::Portable, CpuKernelKind::Avx2}) {
    EXPECT_EQ(cpu_kernel_from_name(cpu_kernel_name(kind)), kind);
  }
  EXPECT_THROW((void)cpu_kernel_from_name("sse9"), std::invalid_argument);
  EXPECT_THROW((void)cpu_kernel_from_name(""), std::invalid_argument);
}

TEST(DpMatrixExtend, PoolMatchesSerialBitwise) {
  // 100 new rows crosses the pool-tiling threshold; the suffix-scan order is
  // fixed per row, so pool and serial extends must agree bit-for-bit.
  const Dataset d = kernel_dataset(29, 100, 30);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  omega::par::ThreadPool pool(3);

  DpMatrix serial, pooled;
  serial.reset(0);
  serial.extend(100, engine);
  pooled.reset(0);
  pooled.extend(100, engine, &pool);
  ASSERT_EQ(serial.end(), pooled.end());
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      ASSERT_EQ(serial.at(i, j), pooled.at(i, j)) << i << "," << j;
    }
  }

  // Incremental growth (the relocate-then-extend scan pattern) agrees too.
  DpMatrix stepped;
  stepped.reset(0);
  stepped.extend(40, engine, &pool);
  stepped.extend(100, engine, &pool);
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      ASSERT_EQ(serial.at(i, j), stepped.at(i, j)) << i << "," << j;
    }
  }
}

TEST(DpMatrixExtend, NoNewRowsSkipsEngineCall) {
  const Dataset d = kernel_dataset(31, 30, 20);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  DpMatrix m;
  m.reset(0);
  m.extend(30, engine);
  const auto fetches = m.r2_fetches();
  const auto recomputed = m.stats().cells_recomputed;
  m.extend(30, engine);  // same end: no work
  m.extend(12, engine);  // shrink request: no work
  EXPECT_EQ(m.r2_fetches(), fetches);
  EXPECT_EQ(m.stats().cells_recomputed, recomputed);
  EXPECT_EQ(m.end(), 30u);
}

TEST(DpMatrixAt, ErrorMessageCarriesIndicesAndRange) {
  DpMatrix m;
  m.reset(5);
  try {
    (void)m.at(7, 3);
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("DpMatrix::at(7, 3)"), std::string::npos) << what;
    EXPECT_NE(what.find("[5, 5)"), std::string::npos) << what;
  }
}

TEST(ScanKernelOptions, KernelsProduceEquivalentScansAndMetrics) {
  const Dataset d = kernel_dataset(37, 150, 30);
  omega::core::ScannerOptions scalar_options;
  scalar_options.config = kernel_config();
  scalar_options.cpu_kernel = CpuKernelKind::Scalar;
  const auto scalar = omega::core::scan(d, scalar_options);
  EXPECT_EQ(scalar.profile.kernel.requested, "scalar");
  EXPECT_EQ(scalar.profile.kernel.selected, "scalar");
  EXPECT_GT(scalar.profile.kernel.positions, 0u);
  EXPECT_EQ(scalar.profile.kernel.scalar_evaluations,
            scalar.profile.omega_evaluations);
  EXPECT_EQ(scalar.profile.kernel.portable_evaluations, 0u);
  EXPECT_EQ(scalar.profile.kernel.avx2_evaluations, 0u);

  omega::core::ScannerOptions auto_options = scalar_options;
  auto_options.cpu_kernel = CpuKernelKind::Auto;
  const auto dispatched = omega::core::scan(d, auto_options);
  EXPECT_EQ(dispatched.profile.kernel.requested, "auto");
  EXPECT_NE(dispatched.profile.kernel.selected, "scalar");
  EXPECT_EQ(dispatched.profile.kernel.scalar_evaluations, 0u);
  EXPECT_EQ(dispatched.profile.kernel.portable_evaluations +
                dispatched.profile.kernel.avx2_evaluations,
            dispatched.profile.omega_evaluations);

  ASSERT_EQ(scalar.scores.size(), dispatched.scores.size());
  for (std::size_t g = 0; g < scalar.scores.size(); ++g) {
    EXPECT_EQ(scalar.scores[g].valid, dispatched.scores[g].valid);
    if (!scalar.scores[g].valid) continue;
    EXPECT_EQ(scalar.scores[g].best_a, dispatched.scores[g].best_a);
    EXPECT_EQ(scalar.scores[g].best_b, dispatched.scores[g].best_b);
    EXPECT_NEAR(scalar.scores[g].max_omega, dispatched.scores[g].max_omega,
                1e-9 * (1.0 + scalar.scores[g].max_omega));
  }

  // The metrics document carries the v4 kernel block.
  const auto doc =
      omega::core::metrics::scan_metrics("kernel-test", dispatched.profile);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& kernel = doc.at("kernel");
  EXPECT_EQ(kernel.at("requested").as_string(), "auto");
  EXPECT_EQ(kernel.at("selected").as_string(),
            dispatched.profile.kernel.selected);
  EXPECT_EQ(kernel.at("avx2_supported").as_bool(),
            omega::core::cpu_kernel_avx2_available());
  EXPECT_EQ(kernel.at("positions").as_uint(),
            dispatched.profile.kernel.positions);
}

TEST(ScanKernelOptions, InnerPositionStrategyRecordsKernelCounters) {
  const Dataset d = kernel_dataset(41, 120, 24);
  omega::core::ScannerOptions options;
  options.config = kernel_config();
  options.threads = 3;
  options.mt_strategy = omega::core::ScannerOptions::MtStrategy::InnerPosition;
  const auto result = omega::core::scan(d, options);
  EXPECT_GT(result.profile.kernel.positions, 0u);
  EXPECT_EQ(result.profile.kernel.scalar_evaluations +
                result.profile.kernel.portable_evaluations +
                result.profile.kernel.avx2_evaluations,
            result.profile.omega_evaluations);
}

TEST(ScanKernelOptions, ForcedAvx2ThrowsCleanlyWhenUnavailable) {
  if (omega::core::cpu_kernel_avx2_available()) {
    GTEST_SKIP() << "AVX2 available; the forced path is exercised elsewhere";
  }
  const Dataset d = kernel_dataset(43, 60, 20);
  omega::core::ScannerOptions options;
  options.config = kernel_config();
  options.cpu_kernel = CpuKernelKind::Avx2;
  EXPECT_THROW((void)omega::core::scan(d, options), std::runtime_error);
}

}  // namespace
