// Cross-cutting randomized property tests: invariants that must hold for
// arbitrary (seeded) inputs, exercising module interactions that the
// per-module suites cover only at fixed shapes.

#include <gtest/gtest.h>

#include <cmath>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_math.h"
#include "core/omega_search.h"
#include "core/scanner.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "sim/dataset_factory.h"
#include "util/prng.h"

namespace {

class RandomizedDpChains : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedDpChains, ArbitraryRelocateExtendEqualsFreshBuild) {
  // Property: after ANY monotone sequence of relocate/extend operations, the
  // DP matrix equals one built fresh over its final range.
  const std::uint64_t seed = GetParam();
  const auto dataset = omega::sim::make_dataset({.snps = 120,
                                                 .samples = 24,
                                                 .locus_length_bp = 500'000,
                                                 .rho = 10.0,
                                                 .seed = seed});
  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);
  omega::util::Xoshiro256 rng(seed * 7 + 1);

  omega::core::DpMatrix chained;
  std::size_t base = rng.bounded(20);
  chained.reset(base);
  std::size_t end = base + 2 + rng.bounded(30);
  chained.extend(end, engine);

  for (int op = 0; op < 12; ++op) {
    // Random forward relocation within the covered range, then random
    // extension (possibly a no-op).
    const std::size_t new_base = base + rng.bounded(end - base + 4);
    if (new_base > base) {
      chained.relocate(new_base);
      base = new_base;
      end = std::max(end, base);
    }
    const std::size_t new_end =
        std::min<std::size_t>(120, std::max(end, base + 1) + rng.bounded(20));
    if (new_end > end && new_end > base) {
      chained.extend(new_end, engine);
      end = new_end;
    }
    if (end <= base) {
      end = base + 2;
      chained.extend(end, engine);
    }

    omega::core::DpMatrix fresh;
    fresh.reset(base);
    fresh.extend(end, engine);
    ASSERT_EQ(chained.base(), fresh.base());
    ASSERT_EQ(chained.end(), fresh.end());
    for (std::size_t i = base; i < end; ++i) {
      for (std::size_t j = base; j <= i; ++j) {
        ASSERT_DOUBLE_EQ(chained.at(i, j), fresh.at(i, j))
            << "op " << op << " entry " << i << "," << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDpChains,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

class RandomizedConfigs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedConfigs, GridGeometryInternallyConsistent) {
  const std::uint64_t seed = GetParam();
  omega::util::Xoshiro256 rng(seed);
  const auto dataset = omega::sim::make_dataset(
      {.snps = 60 + rng.bounded(150),
       .samples = 10 + rng.bounded(40),
       .locus_length_bp = 200'000 + static_cast<std::int64_t>(rng.bounded(800'000)),
       .rho = 5.0 + 50.0 * rng.uniform(),
       .seed = seed + 100});

  omega::core::OmegaConfig config;
  config.grid_size = 3 + rng.bounded(20);
  config.max_window = 50'000 + static_cast<std::int64_t>(rng.bounded(500'000));
  config.min_window =
      std::min<std::int64_t>(config.max_window, 2 + rng.bounded(40'000));
  if (rng.uniform() < 0.3) {
    config.window_unit = omega::core::WindowUnit::Snps;
    config.max_window = 20 + rng.bounded(200);
    config.min_window = 4 + rng.bounded(20);
    if (config.min_window > config.max_window) {
      std::swap(config.min_window, config.max_window);
    }
  }
  if (rng.uniform() < 0.5) {
    config.max_snps_per_side = 10 + rng.bounded(80);
  }

  const auto grid = omega::core::build_grid(dataset, config);
  ASSERT_EQ(grid.size(), config.grid_size);
  for (const auto& position : grid) {
    if (!position.valid) continue;
    // Structural invariants of the resolved geometry.
    ASSERT_LE(position.lo, position.a_max);
    ASSERT_LT(position.a_max, position.c);
    ASSERT_LE(position.c + 2, position.b_min);
    ASSERT_LE(position.b_min, position.hi);
    ASSERT_LT(position.hi, dataset.num_sites());
    ASSERT_EQ(position.combinations(),
              static_cast<std::uint64_t>(position.a_max - position.lo + 1) *
                  (position.hi - position.b_min + 1));
    if (config.max_snps_per_side > 0) {
      ASSERT_LE(position.left_snps(), config.max_snps_per_side);
      ASSERT_LE(position.right_snps(), config.max_snps_per_side);
    }
    // The split straddles the omega position.
    ASSERT_LE(dataset.position(position.c), position.position_bp);
    ASSERT_GT(dataset.position(position.c + 1), position.position_bp);
  }
}

TEST_P(RandomizedConfigs, ScanScoresAreFiniteAndNonNegative) {
  const std::uint64_t seed = GetParam();
  const auto dataset = omega::sim::make_dataset({.snps = 100,
                                                 .samples = 30,
                                                 .locus_length_bp = 500'000,
                                                 .rho = 30.0,
                                                 .seed = seed + 500});
  omega::core::ScannerOptions options;
  options.config.grid_size = 10;
  options.config.max_window = 200'000;
  options.config.min_window = 5'000;
  const auto result = omega::core::scan(dataset, options);
  for (const auto& score : result.scores) {
    if (!score.valid) continue;
    ASSERT_TRUE(std::isfinite(score.max_omega));
    ASSERT_GE(score.max_omega, 0.0);
    ASSERT_LE(score.best_a, score.best_b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedConfigs,
                         ::testing::Values(21, 22, 23, 24, 25, 26, 27, 28));

TEST(OmegaSymmetry, SwappingSidesPreservesOmega) {
  // Eq. (2) is symmetric under exchanging the L and R sub-regions; the GPU
  // order-switch relies on this. Property over random sum tuples.
  omega::util::Xoshiro256 rng(99);
  for (int round = 0; round < 500; ++round) {
    const double ls = 10.0 * rng.uniform();
    const double rs = 10.0 * rng.uniform();
    const double cross = 5.0 * rng.uniform();
    const std::size_t l = 2 + rng.bounded(40);
    const std::size_t r = 2 + rng.bounded(40);
    const double forward = omega::core::omega_from_sums(ls, rs, cross, l, r);
    const double swapped = omega::core::omega_from_sums(rs, ls, cross, r, l);
    ASSERT_NEAR(forward, swapped, 1e-12 * std::max(1.0, forward));
  }
}

TEST(OmegaMonotonicity, OmegaGrowsAsCrossLdShrinks) {
  // With fixed within-region sums, omega must be strictly decreasing in the
  // cross-region sum — the core of the detection principle.
  double previous = std::numeric_limits<double>::infinity();
  for (double cross = 0.0; cross < 3.0; cross += 0.1) {
    const double value = omega::core::omega_from_sums(4.0, 3.0, cross, 10, 12);
    ASSERT_LT(value, previous);
    previous = value;
  }
}

}  // namespace
