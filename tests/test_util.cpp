// Unit tests for omega::util: PRNG statistical behaviour and determinism,
// streaming statistics, CLI parsing, and bit helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/bits.h"
#include "util/cli.h"
#include "util/prng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using omega::util::Xoshiro256;

TEST(Prng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Prng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  omega::util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Prng, BoundedStaysInRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Prng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(11);
  std::array<int, 8> histogram{};
  const int draws = 80000;
  for (int i = 0; i < draws; ++i) {
    ++histogram[rng.bounded(8)];
  }
  for (const int count : histogram) {
    EXPECT_NEAR(count, draws / 8, draws / 8 * 0.1);
  }
}

TEST(Prng, ExponentialMeanMatchesRate) {
  Xoshiro256 rng(13);
  omega::util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(Prng, NormalMomentsMatch) {
  Xoshiro256 rng(17);
  omega::util::RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.02);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.02);
}

class PrngPoisson : public ::testing::TestWithParam<double> {};

TEST_P(PrngPoisson, MeanAndVarianceMatch) {
  const double mean = GetParam();
  Xoshiro256 rng(static_cast<std::uint64_t>(mean * 1000) + 3);
  omega::util::RunningStats stats;
  for (int i = 0; i < 50000; ++i) {
    stats.add(static_cast<double>(rng.poisson(mean)));
  }
  EXPECT_NEAR(stats.mean(), mean, std::max(0.05, mean * 0.05));
  EXPECT_NEAR(stats.variance(), mean, std::max(0.2, mean * 0.1));
}

INSTANTIATE_TEST_SUITE_P(Means, PrngPoisson,
                         ::testing::Values(0.5, 2.0, 10.0, 29.0, 80.0, 400.0));

TEST(Prng, ForkProducesIndependentStream) {
  Xoshiro256 rng(21);
  Xoshiro256 forked = rng.fork(1);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) {
    values.insert(rng());
    values.insert(forked());
  }
  EXPECT_GT(values.size(), 195u);  // near-zero collisions
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> values{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(omega::util::percentile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(omega::util::percentile(values, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(omega::util::percentile(values, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(omega::util::percentile(values, 0.25), 2.0);
}

TEST(Stats, PercentileOfEmptyThrows) {
  EXPECT_THROW(omega::util::percentile({}, 0.5), std::invalid_argument);
}

TEST(Stats, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(omega::util::harmonic(1), 1.0);
  EXPECT_NEAR(omega::util::harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> x{1, 2, 3, 4};
  std::vector<double> y{2, 4, 6, 8};
  EXPECT_NEAR(omega::util::pearson(x, y), 1.0, 1e-12);
  std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(omega::util::pearson(x, z), -1.0, 1e-12);
}

TEST(Stats, RunningStatsWelford) {
  omega::util::RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha", "3",  "--beta=0.5",
                        "--flag", "--name", "x"};
  omega::util::Cli cli(7, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("beta", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get("name", ""), "x");
  EXPECT_EQ(cli.get_int("missing", 42), 42);
}

TEST(Cli, RejectsPositionalAndUnknown) {
  const char* bad[] = {"prog", "stray"};
  EXPECT_THROW(omega::util::Cli(2, bad), std::invalid_argument);

  const char* unknown[] = {"prog", "--typo", "1"};
  omega::util::Cli cli(3, unknown);
  cli.describe("real", "a real option");
  EXPECT_THROW(cli.reject_unknown(), std::invalid_argument);
}

TEST(Cli, HelpFlagDetected) {
  const char* argv[] = {"prog", "--help"};
  omega::util::Cli cli(2, argv);
  EXPECT_TRUE(cli.wants_help());
}

TEST(Table, FormatsAlignedRows) {
  omega::util::Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, SiSuffixes) {
  EXPECT_EQ(omega::util::Table::si(1500.0, 1), "1.5k");
  EXPECT_EQ(omega::util::Table::si(2.5e6, 1), "2.5M");
  EXPECT_EQ(omega::util::Table::si(3e9, 0), "3G");
  EXPECT_EQ(omega::util::Table::si(12.0, 0), "12");
}

TEST(Bits, WordsAndMasks) {
  EXPECT_EQ(omega::util::words_for_bits(0), 0u);
  EXPECT_EQ(omega::util::words_for_bits(1), 1u);
  EXPECT_EQ(omega::util::words_for_bits(64), 1u);
  EXPECT_EQ(omega::util::words_for_bits(65), 2u);
  EXPECT_EQ(omega::util::tail_mask(64), ~0ull);
  EXPECT_EQ(omega::util::tail_mask(1), 1ull);
  EXPECT_EQ(omega::util::tail_mask(3), 7ull);
}

TEST(Bits, AndPopcount) {
  const std::uint64_t a[2] = {0b1010, ~0ull};
  const std::uint64_t b[2] = {0b0110, 0x0F0Full};
  EXPECT_EQ(omega::util::and_popcount(a, b, 2), 1 + 8);
  EXPECT_EQ(omega::util::popcount_range(a, 2), 2 + 64);
}

}  // namespace
