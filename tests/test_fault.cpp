// Fault-tolerant scan runtime tests: the deterministic injector, the
// structured BackendError type, the retry/backoff + quarantine recovery
// engine, graceful CPU degradation, and — end to end — fault-injected scans
// whose surviving positions stay bit-identical to the fault-free scan.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/metrics_json.h"
#include "core/resilience.h"
#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "io/dataset.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/fault.h"
#include "util/trace.h"

namespace {

using omega::core::BackendError;
using omega::core::BackendErrorKind;
using omega::core::FaultRecoveryStats;
using omega::core::OmegaResult;
using omega::core::RecoveryPolicy;
using omega::util::fault::FaultInjector;
using omega::util::fault::FaultMode;
using omega::util::fault::FaultPlan;

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultPlan plan_of(FaultMode mode, double rate, std::uint64_t seed = 99) {
  FaultPlan plan;
  plan.mode = mode;
  plan.rate = rate;
  plan.seed = seed;
  return plan;
}

TEST(FaultInjector, SameSeedSameSchedule) {
  const auto plan = plan_of(FaultMode::Mixed, 0.3);
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "call " << i;
  }
  EXPECT_EQ(a.counters().total_injected(), b.counters().total_injected());
  EXPECT_GT(a.counters().total_injected(), 0u);
  EXPECT_EQ(a.counters().calls, 2'000u);
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  FaultInjector a(plan_of(FaultMode::KernelLaunch, 0.5, 1));
  FaultInjector b(plan_of(FaultMode::KernelLaunch, 0.5, 2));
  bool diverged = false;
  for (int i = 0; i < 500 && !diverged; ++i) diverged = a.next() != b.next();
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, DisabledPlansNeverFire) {
  FaultInjector none(plan_of(FaultMode::None, 1.0));
  FaultInjector zero_rate(plan_of(FaultMode::KernelLaunch, 0.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(none.next(), FaultMode::None);
    EXPECT_EQ(zero_rate.next(), FaultMode::None);
  }
  EXPECT_EQ(none.counters().total_injected(), 0u);
  EXPECT_EQ(zero_rate.counters().total_injected(), 0u);
}

TEST(FaultInjector, TriggerWindowBoundsInjection) {
  auto plan = plan_of(FaultMode::KernelLaunch, 1.0);
  plan.window_begin = 5;
  plan.window_end = 10;
  FaultInjector injector(plan);
  for (std::uint64_t call = 0; call < 20; ++call) {
    const auto mode = injector.next();
    if (call >= 5 && call < 10) {
      EXPECT_EQ(mode, FaultMode::KernelLaunch) << "call " << call;
    } else {
      EXPECT_EQ(mode, FaultMode::None) << "call " << call;
    }
  }
  EXPECT_EQ(injector.counters().injected_kernel_launch, 5u);
}

TEST(FaultInjector, DeviceLossIsPermanent) {
  FaultPlan plan;
  plan.device_lost_after = 3;
  FaultInjector injector(plan);
  EXPECT_EQ(injector.next(), FaultMode::None);
  EXPECT_EQ(injector.next(), FaultMode::None);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.next(), FaultMode::DeviceLost);
    EXPECT_TRUE(injector.device_lost());
  }
}

TEST(FaultInjector, MixedModeProducesOnlyTransientFaults) {
  FaultInjector injector(plan_of(FaultMode::Mixed, 1.0));
  bool saw_launch = false, saw_timeout = false, saw_nan = false;
  for (int i = 0; i < 300; ++i) {
    const auto mode = injector.next();
    ASSERT_TRUE(mode == FaultMode::KernelLaunch ||
                mode == FaultMode::Timeout || mode == FaultMode::TransientNan);
    saw_launch |= mode == FaultMode::KernelLaunch;
    saw_timeout |= mode == FaultMode::Timeout;
    saw_nan |= mode == FaultMode::TransientNan;
  }
  EXPECT_TRUE(saw_launch);
  EXPECT_TRUE(saw_timeout);
  EXPECT_TRUE(saw_nan);
}

TEST(FaultPlanTest, NamesRoundTripAndValidate) {
  using omega::util::fault::mode_from_name;
  using omega::util::fault::mode_name;
  for (const auto mode :
       {FaultMode::None, FaultMode::KernelLaunch, FaultMode::Timeout,
        FaultMode::TransientNan, FaultMode::DeviceLost, FaultMode::Mixed}) {
    EXPECT_EQ(mode_from_name(mode_name(mode)), mode);
  }
  EXPECT_THROW((void)mode_from_name("cosmic-ray"), std::invalid_argument);

  FaultPlan bad_rate;
  bad_rate.rate = 1.5;
  EXPECT_THROW(bad_rate.validate(), std::invalid_argument);
  FaultPlan bad_window;
  bad_window.window_begin = 7;
  bad_window.window_end = 7;
  EXPECT_THROW(bad_window.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BackendError + RecoveryPolicy
// ---------------------------------------------------------------------------

TEST(BackendErrorTest, CarriesKindBackendAndRetryability) {
  const BackendError launch(BackendErrorKind::KernelLaunch, "gpu-sim", "enqueue failed");
  EXPECT_EQ(launch.kind(), BackendErrorKind::KernelLaunch);
  EXPECT_EQ(launch.backend(), "gpu-sim");
  EXPECT_TRUE(launch.retryable());
  EXPECT_NE(std::string(launch.what()).find("gpu-sim"), std::string::npos);
  EXPECT_NE(std::string(launch.what()).find("enqueue failed"), std::string::npos);

  EXPECT_TRUE(BackendError(BackendErrorKind::Timeout, "x", "y").retryable());
  EXPECT_FALSE(BackendError(BackendErrorKind::DeviceLost, "x", "y").retryable());
}

TEST(RecoveryPolicyTest, RejectsNonsense) {
  RecoveryPolicy bad;
  bad.backoff_multiplier = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  RecoveryPolicy negative;
  negative.backoff_initial_seconds = -1.0;
  EXPECT_THROW(negative.validate(), std::invalid_argument);
  EXPECT_NO_THROW(RecoveryPolicy{}.validate());
}

// ---------------------------------------------------------------------------
// recover_max_omega with a scripted backend
// ---------------------------------------------------------------------------

/// Fails the first `failures` calls (throwing `kind`, or returning a
/// NaN-poisoned result when `poison` is set), then succeeds.
class ScriptedBackend final : public omega::core::OmegaBackend {
 public:
  ScriptedBackend(int failures, BackendErrorKind kind, bool poison = false)
      : failures_(failures), kind_(kind), poison_(poison) {}

  [[nodiscard]] std::string name() const override { return "scripted"; }
  OmegaResult max_omega(const omega::core::DpMatrix&,
                        const omega::core::GridPosition&) override {
    ++calls_;
    if (calls_ <= failures_) {
      if (poison_) {
        OmegaResult poisoned;
        poisoned.evaluated = 4;
        poisoned.max_omega = std::numeric_limits<double>::quiet_NaN();
        return poisoned;
      }
      throw BackendError(kind_, name(), "scripted failure");
    }
    OmegaResult good;
    good.max_omega = 2.5;
    good.best_a = 1;
    good.best_b = 9;
    good.evaluated = 42;
    return good;
  }

  [[nodiscard]] int calls() const noexcept { return calls_; }

 private:
  int failures_;
  BackendErrorKind kind_;
  bool poison_;
  int calls_ = 0;
};

TEST(RecoverMaxOmega, RetriesTransientFailuresWithVirtualBackoff) {
  ScriptedBackend backend(2, BackendErrorKind::KernelLaunch);
  RecoveryPolicy policy;  // max_retries = 3, backoff 1e-3 doubling
  FaultRecoveryStats stats;
  omega::core::DpMatrix m;
  omega::core::GridPosition position;  // invalid is fine: backend is scripted
  const auto outcome =
      omega::core::recover_max_omega(backend, m, position, policy, stats);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcome.retries, 2u);
  EXPECT_EQ(outcome.result.max_omega, 2.5);
  EXPECT_EQ(outcome.result.evaluated, 42u);
  EXPECT_EQ(stats.errors_caught, 2u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.quarantined_positions, 0u);
  // Backoff accrues 1e-3 then 2e-3 on the virtual clock.
  EXPECT_NEAR(stats.backoff_virtual_seconds, 3e-3, 1e-12);
  EXPECT_EQ(backend.calls(), 3);
}

TEST(RecoverMaxOmega, ExhaustedRetriesQuarantine) {
  ScriptedBackend backend(100, BackendErrorKind::Timeout);
  RecoveryPolicy policy;
  policy.max_retries = 3;
  FaultRecoveryStats stats;
  omega::core::DpMatrix m;
  omega::core::GridPosition position;
  const auto outcome =
      omega::core::recover_max_omega(backend, m, position, policy, stats);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.errors_caught, 4u);  // initial attempt + 3 retries
  EXPECT_EQ(stats.quarantined_positions, 1u);
  EXPECT_EQ(backend.calls(), 4);
}

TEST(RecoverMaxOmega, DeviceLostQuarantinesWithoutRetrying) {
  ScriptedBackend backend(100, BackendErrorKind::DeviceLost);
  RecoveryPolicy policy;
  FaultRecoveryStats stats;
  omega::core::DpMatrix m;
  omega::core::GridPosition position;
  const auto outcome =
      omega::core::recover_max_omega(backend, m, position, policy, stats);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.quarantined_positions, 1u);
  EXPECT_EQ(backend.calls(), 1);  // terminal error: no second attempt
}

TEST(RecoverMaxOmega, NanPoisonedResultsAreRetried) {
  ScriptedBackend backend(2, BackendErrorKind::KernelLaunch, /*poison=*/true);
  RecoveryPolicy policy;
  FaultRecoveryStats stats;
  omega::core::DpMatrix m;
  omega::core::GridPosition position;
  const auto outcome =
      omega::core::recover_max_omega(backend, m, position, policy, stats);
  EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(stats.invalid_results, 2u);
  EXPECT_EQ(stats.errors_caught, 0u);
  EXPECT_TRUE(std::isfinite(outcome.result.max_omega));
}

TEST(RecoverMaxOmega, ValidationCanBeDisabled) {
  ScriptedBackend backend(100, BackendErrorKind::KernelLaunch, /*poison=*/true);
  RecoveryPolicy policy;
  policy.validate_results = false;
  FaultRecoveryStats stats;
  omega::core::DpMatrix m;
  omega::core::GridPosition position;
  const auto outcome =
      omega::core::recover_max_omega(backend, m, position, policy, stats);
  EXPECT_TRUE(outcome.ok);  // the poisoned result sails through unvalidated
  EXPECT_EQ(stats.invalid_results, 0u);
  EXPECT_TRUE(std::isnan(outcome.result.max_omega));
}

// ---------------------------------------------------------------------------
// FallbackBackend
// ---------------------------------------------------------------------------

TEST(FallbackBackendTest, DemotesToCpuOnDeviceLost) {
  auto primary = std::make_unique<ScriptedBackend>(100, BackendErrorKind::DeviceLost);
  omega::core::FallbackBackend fallback(std::move(primary));
  EXPECT_FALSE(fallback.degraded());
  EXPECT_EQ(fallback.name(), "scripted");

  omega::core::DpMatrix m;
  omega::core::GridPosition position;  // invalid: CPU recompute returns empty
  const auto result = fallback.max_omega(m, position);
  EXPECT_TRUE(fallback.degraded());
  EXPECT_EQ(result.evaluated, 0u);  // CPU result for the invalid position
  EXPECT_NE(fallback.name().find("degraded:cpu"), std::string::npos);

  // Later calls skip the dead primary entirely.
  (void)fallback.max_omega(m, position);
  EXPECT_TRUE(fallback.degraded());
}

TEST(FallbackBackendTest, TransientErrorsPassThrough) {
  auto primary = std::make_unique<ScriptedBackend>(1, BackendErrorKind::KernelLaunch);
  omega::core::FallbackBackend fallback(std::move(primary));
  omega::core::DpMatrix m;
  omega::core::GridPosition position;
  EXPECT_THROW((void)fallback.max_omega(m, position), BackendError);
  EXPECT_FALSE(fallback.degraded());  // transient: no demotion
  const auto result = fallback.max_omega(m, position);
  EXPECT_EQ(result.evaluated, 42u);  // primary recovered and still serves
}

// ---------------------------------------------------------------------------
// End-to-end fault-injected scans
// ---------------------------------------------------------------------------

omega::io::Dataset fault_dataset() {
  return omega::sim::make_dataset({.snps = 400,
                                   .samples = 30,
                                   .locus_length_bp = 400'000,
                                   .rho = 50.0,
                                   .seed = 777});
}

omega::core::ScannerOptions fault_options() {
  omega::core::ScannerOptions options;
  options.config.grid_size = 40;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 300;
  options.config.min_window = 40;
  return options;
}

/// Runs a GPU-sim scan with the given fault plan (threads=1 unless set).
omega::core::ScanResult gpu_scan(const omega::io::Dataset& dataset,
                                 omega::core::ScannerOptions options,
                                 const FaultPlan& plan,
                                 double modeled_timeout = 0.0) {
  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  return omega::core::scan(dataset, options, [&] {
    omega::hw::gpu::GpuBackendOptions backend_options;
    backend_options.fault_plan = plan;
    backend_options.modeled_timeout_seconds = modeled_timeout;
    return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                             backend_options);
  });
}

void expect_scores_identical(const std::vector<omega::core::PositionScore>& a,
                             const std::vector<omega::core::PositionScore>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].position_bp, b[i].position_bp) << "position " << i;
    EXPECT_EQ(a[i].valid, b[i].valid) << "position " << i;
    if (!a[i].valid) continue;
    // Bit-for-bit: same backend arithmetic must reproduce exactly.
    EXPECT_EQ(a[i].max_omega, b[i].max_omega) << "position " << i;
    EXPECT_EQ(a[i].best_a, b[i].best_a) << "position " << i;
    EXPECT_EQ(a[i].best_b, b[i].best_b) << "position " << i;
    EXPECT_EQ(a[i].evaluated, b[i].evaluated) << "position " << i;
  }
}

TEST(FaultScan, TenPercentKernelLaunchFailuresRecoverBitIdentically) {
  // The acceptance scenario: 10% of kernel launches fail; the scan completes,
  // reports recovery counters, and every non-quarantined position matches the
  // fault-free scan bit for bit.
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto clean = gpu_scan(dataset, options, FaultPlan{});

  auto plan = plan_of(FaultMode::KernelLaunch, 0.1, 1337);
  const auto faulty = gpu_scan(dataset, options, plan);

  const auto& faults = faulty.profile.faults;
  EXPECT_GT(faults.faults_injected, 0u);
  EXPECT_EQ(faults.faults_injected, faults.injected_kernel_launch);
  EXPECT_EQ(faults.errors_caught, faults.injected_kernel_launch);
  EXPECT_GT(faults.retries, 0u);
  EXPECT_GT(faults.backoff_virtual_seconds, 0.0);
  EXPECT_EQ(faults.degradations, 0u);

  ASSERT_EQ(faulty.scores.size(), clean.scores.size());
  for (std::size_t i = 0; i < faulty.scores.size(); ++i) {
    if (faulty.scores[i].quarantined) continue;  // retries may have run out
    EXPECT_EQ(faulty.scores[i].max_omega, clean.scores[i].max_omega)
        << "position " << i;
    EXPECT_EQ(faulty.scores[i].best_a, clean.scores[i].best_a);
    EXPECT_EQ(faulty.scores[i].best_b, clean.scores[i].best_b);
  }

  // The metrics document carries the same counters.
  const auto doc =
      omega::core::metrics::scan_metrics("fault-accept", faulty.profile);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& json_faults = doc.at("faults");
  EXPECT_EQ(json_faults.at("injected").as_uint(), faults.faults_injected);
  EXPECT_EQ(json_faults.at("retries").as_uint(), faults.retries);
  EXPECT_EQ(json_faults.at("quarantined_positions").as_uint(),
            faults.quarantined_positions);
  EXPECT_EQ(json_faults.at("degradations").as_uint(), faults.degradations);
}

TEST(FaultScan, DeviceLostAtFirstCallDegradesToBitIdenticalCpu) {
  // Device lost on the very first backend call: with CPU fallback the entire
  // scan is computed by the CPU loop and must match a pure-CPU scan exactly.
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto cpu = omega::core::scan(dataset, options);

  FaultPlan plan;
  plan.device_lost_after = 1;
  const auto degraded = gpu_scan(dataset, options, plan);

  EXPECT_EQ(degraded.profile.faults.degradations, 1u);
  EXPECT_EQ(degraded.profile.faults.quarantined_positions, 0u);
  expect_scores_identical(degraded.scores, cpu.scores);
}

TEST(FaultScan, DeviceLostDegradationMatchesCpuUnderThreads) {
  // Same equivalence under the work-stealing multithreaded driver: every
  // worker's backend loses its device on its first call, so every worker
  // that claimed any span degrades. Under stealing a worker can be fully
  // robbed before its first claim, so the count is active_workers (<= 4),
  // not a fixed 4.
  const auto dataset = fault_dataset();
  auto options = fault_options();
  options.threads = 4;
  const auto cpu = omega::core::scan(dataset, options);

  FaultPlan plan;
  plan.device_lost_after = 1;
  const auto degraded = gpu_scan(dataset, options, plan);

  EXPECT_EQ(degraded.profile.faults.degradations,
            degraded.profile.sched.active_workers());
  EXPECT_GE(degraded.profile.faults.degradations, 1u);
  expect_scores_identical(degraded.scores, cpu.scores);
}

TEST(FaultScan, MidScanDeviceLossSplitsGpuPrefixCpuSuffix) {
  // Device lost at the 6th backend call: the first 5 valid positions carry
  // GPU results, everything after is the CPU loop — both halves bit-exact
  // against their reference scans.
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto gpu_clean = gpu_scan(dataset, options, FaultPlan{});
  const auto cpu = omega::core::scan(dataset, options);

  FaultPlan plan;
  plan.device_lost_after = 6;
  const auto mixed = gpu_scan(dataset, options, plan);

  EXPECT_EQ(mixed.profile.faults.degradations, 1u);
  ASSERT_EQ(mixed.scores.size(), cpu.scores.size());
  std::size_t valid_seen = 0;
  for (std::size_t i = 0; i < mixed.scores.size(); ++i) {
    if (!mixed.scores[i].valid) continue;
    ++valid_seen;
    const auto& reference =
        valid_seen <= 5 ? gpu_clean.scores[i] : cpu.scores[i];
    EXPECT_EQ(mixed.scores[i].max_omega, reference.max_omega)
        << "valid position " << valid_seen;
    EXPECT_EQ(mixed.scores[i].best_a, reference.best_a);
    EXPECT_EQ(mixed.scores[i].best_b, reference.best_b);
  }
  EXPECT_GT(valid_seen, 5u);  // the split actually exercised both halves
}

TEST(FaultScan, CertainFailureWithoutFallbackQuarantinesEverything) {
  const auto dataset = fault_dataset();
  auto options = fault_options();
  options.recovery.fallback_to_cpu = false;
  options.recovery.max_retries = 2;

  const auto plan = plan_of(FaultMode::KernelLaunch, 1.0);
  const auto result = gpu_scan(dataset, options, plan);

  const auto& faults = result.profile.faults;
  EXPECT_GT(faults.quarantined_positions, 0u);
  EXPECT_EQ(faults.degradations, 0u);
  EXPECT_FALSE(result.has_valid());
  EXPECT_THROW((void)result.best(), std::logic_error);
  for (const auto& score : result.scores) {
    EXPECT_FALSE(score.valid);
    // Geometry-invalid positions are skipped, never quarantined; every
    // position the backend actually touched is quarantined.
    if (score.evaluated == 0 && !score.quarantined) continue;
    EXPECT_TRUE(score.quarantined);
  }
  // Quarantined count matches the flagged scores exactly.
  std::uint64_t flagged = 0;
  for (const auto& score : result.scores) flagged += score.quarantined ? 1 : 0;
  EXPECT_EQ(faults.quarantined_positions, flagged);
}

TEST(FaultScan, TransientNanResultsAreRetriedToCleanValues) {
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto clean = gpu_scan(dataset, options, FaultPlan{});

  const auto plan = plan_of(FaultMode::TransientNan, 0.2, 4242);
  const auto recovered = gpu_scan(dataset, options, plan);

  EXPECT_GT(recovered.profile.faults.injected_nan, 0u);
  EXPECT_GT(recovered.profile.faults.invalid_results, 0u);
  for (std::size_t i = 0; i < recovered.scores.size(); ++i) {
    if (recovered.scores[i].quarantined) continue;
    EXPECT_EQ(recovered.scores[i].max_omega, clean.scores[i].max_omega)
        << "position " << i;
  }
}

TEST(FaultScan, ModeledTimeoutWatchdogQuarantines) {
  // An impossible device-time budget trips the watchdog on every position:
  // timeouts are retryable (not device loss), so nothing degrades — the
  // whole grid quarantines instead. No fault plan involved: this exercises
  // a "real" (non-injected) BackendError through the same path.
  const auto dataset = fault_dataset();
  auto options = fault_options();
  options.recovery.max_retries = 1;
  const auto result =
      gpu_scan(dataset, options, FaultPlan{}, /*modeled_timeout=*/1e-15);

  const auto& faults = result.profile.faults;
  EXPECT_EQ(faults.faults_injected, 0u);
  EXPECT_GT(faults.errors_caught, 0u);
  EXPECT_GT(faults.quarantined_positions, 0u);
  EXPECT_EQ(faults.degradations, 0u);
  EXPECT_FALSE(result.has_valid());
}

TEST(FaultScan, FpgaBackendInjectsAndRecoversToo) {
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto spec = omega::hw::alveo_u200();
  auto scan_fpga = [&](const FaultPlan& plan) {
    return omega::core::scan(dataset, options, [&] {
      omega::hw::fpga::FpgaBackendOptions backend_options;
      backend_options.fault_plan = plan;
      return std::make_unique<omega::hw::fpga::FpgaOmegaBackend>(
          spec, backend_options);
    });
  };
  const auto clean = scan_fpga(FaultPlan{});
  const auto faulty = scan_fpga(plan_of(FaultMode::Mixed, 0.15, 31337));

  EXPECT_GT(faulty.profile.faults.faults_injected, 0u);
  for (std::size_t i = 0; i < faulty.scores.size(); ++i) {
    if (faulty.scores[i].quarantined) continue;
    EXPECT_EQ(faulty.scores[i].max_omega, clean.scores[i].max_omega)
        << "position " << i;
  }
}

TEST(FaultScan, RecoveryActionsEmitTraceInstants) {
  omega::util::trace::enable();
  const auto plan = plan_of(FaultMode::KernelLaunch, 0.3, 2024);
  (void)gpu_scan(fault_dataset(), fault_options(), plan);
  omega::util::trace::disable();

  bool saw_retry = false;
  for (const auto& event : omega::util::trace::snapshot()) {
    if (std::string(event.name) == "scan.recover.retry") {
      saw_retry = true;
      EXPECT_EQ(event.duration_s, 0.0);  // instants have zero duration
    }
  }
  EXPECT_TRUE(saw_retry);
}

TEST(FaultScan, FaultySchedulesAreReproducible) {
  // Identical (plan, dataset, options) → identical scores AND counters.
  const auto dataset = fault_dataset();
  const auto options = fault_options();
  const auto plan = plan_of(FaultMode::Mixed, 0.25, 909);
  const auto first = gpu_scan(dataset, options, plan);
  const auto second = gpu_scan(dataset, options, plan);

  expect_scores_identical(first.scores, second.scores);
  EXPECT_EQ(first.profile.faults.faults_injected,
            second.profile.faults.faults_injected);
  EXPECT_EQ(first.profile.faults.retries, second.profile.faults.retries);
  EXPECT_EQ(first.profile.faults.quarantined_positions,
            second.profile.faults.quarantined_positions);
}

}  // namespace
