// Tests for the OmegaPlus-compatible Report/Info writers and the Report
// reader round-trip.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/report.h"
#include "core/scanner.h"
#include "sim/dataset_factory.h"

namespace {

omega::core::ScanResult small_scan(const omega::io::Dataset& dataset,
                                   omega::core::ScannerOptions& options) {
  options.config.grid_size = 15;
  options.config.max_window = 250'000;
  options.config.min_window = 10'000;
  return omega::core::scan(dataset, options);
}

TEST(Report, WriteAndReadBack) {
  const auto dataset = omega::sim::make_dataset(
      {.snps = 120, .samples = 24, .locus_length_bp = 1'000'000, .rho = 10.0, .seed = 3});
  omega::core::ScannerOptions options;
  const auto result = small_scan(dataset, options);

  std::stringstream buffer;
  omega::core::write_report(buffer, result);
  const auto rows = omega::core::read_report(buffer);
  ASSERT_EQ(rows.size(), result.scores.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, result.scores[i].position_bp);
    EXPECT_NEAR(rows[i].second,
                result.scores[i].valid ? result.scores[i].max_omega : 0.0,
                1e-5 * (1.0 + result.scores[i].max_omega));
  }
}

TEST(Report, MalformedLineThrows) {
  std::istringstream in("100\t1.5\nnot-a-number\n");
  EXPECT_THROW(omega::core::read_report(in), std::runtime_error);
}

TEST(Report, InfoContainsKeyFields) {
  const auto dataset = omega::sim::make_dataset(
      {.snps = 100, .samples = 20, .locus_length_bp = 500'000, .rho = 5.0, .seed = 4});
  omega::core::ScannerOptions options;
  options.ld = omega::core::LdBackendKind::Gemm;
  const auto result = small_scan(dataset, options);

  std::ostringstream info;
  omega::core::write_info(info, "unit-test", dataset, options, result, "cpu");
  const std::string text = info.str();
  EXPECT_NE(text.find("run: unit-test"), std::string::npos);
  EXPECT_NE(text.find("20 samples x 100 SNPs"), std::string::npos);
  EXPECT_NE(text.find("Grid size:    15"), std::string::npos);
  EXPECT_NE(text.find("LD engine:    gemm"), std::string::npos);
  EXPECT_NE(text.find("Top windows:"), std::string::npos);
}

TEST(Report, RunFilesLandOnDisk) {
  const auto dataset = omega::sim::make_dataset(
      {.snps = 90, .samples = 20, .locus_length_bp = 500'000, .rho = 5.0, .seed = 5});
  omega::core::ScannerOptions options;
  const auto result = small_scan(dataset, options);

  const std::string directory =
      (std::filesystem::temp_directory_path() / "omega_report_test").string();
  std::filesystem::create_directories(directory);
  const auto report_path = omega::core::write_run_files(
      directory, "disk", dataset, options, result, "cpu");
  EXPECT_TRUE(std::filesystem::exists(report_path));
  EXPECT_TRUE(std::filesystem::exists(directory + "/OmegaPlus_Info.disk"));

  std::ifstream report(report_path);
  const auto rows = omega::core::read_report(report);
  EXPECT_EQ(rows.size(), result.scores.size());
  std::filesystem::remove_all(directory);
}

}  // namespace
