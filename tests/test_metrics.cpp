// Tests for the scan observability layer: the JsonValue document model
// (serialize + parse round-trips), the util/trace.h span recorder, the
// "omega.scan.metrics" schema builder, and — end to end — detect_sweeps on
// every backend with the per-stage / per-backend counters validated against
// the exact workload analysis (ground truth computed from SNP positions
// alone, independently of the scan path).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "core/metrics_json.h"
#include "core/scanner.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/gpu/timing_model.h"
#include "io/dataset.h"
#include "sim/dataset_factory.h"
#include "sweep/detector.h"
#include "util/trace.h"

namespace {

using omega::core::metrics::JsonValue;

omega::io::Dataset metrics_dataset() {
  return omega::sim::make_dataset({.snps = 600,
                                   .samples = 40,
                                   .locus_length_bp = 500'000,
                                   .rho = 60.0,
                                   .seed = 4321});
}

omega::core::OmegaConfig metrics_config() {
  omega::core::OmegaConfig config;
  config.grid_size = 24;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 400;
  config.min_window = 60;
  return config;
}

// ---------------------------------------------------------------------------
// JsonValue document model
// ---------------------------------------------------------------------------

TEST(MetricsJson, ScalarKindsAreDistinct) {
  EXPECT_EQ(JsonValue(std::int64_t{7}).kind(), JsonValue::Kind::Int);
  EXPECT_EQ(JsonValue(7.0).kind(), JsonValue::Kind::Double);
  EXPECT_EQ(JsonValue(true).kind(), JsonValue::Kind::Bool);
  EXPECT_EQ(JsonValue("x").kind(), JsonValue::Kind::String);
  EXPECT_EQ(JsonValue().kind(), JsonValue::Kind::Null);

  // Kinds survive the wire: integers must not come back as doubles.
  EXPECT_EQ(JsonValue::parse("7").kind(), JsonValue::Kind::Int);
  EXPECT_EQ(JsonValue::parse("7.0").kind(), JsonValue::Kind::Double);
  EXPECT_EQ(JsonValue(7.0).dump(0), "7.0");
}

TEST(MetricsJson, DumpParseRoundTripsExactly) {
  auto doc = JsonValue::object();
  doc.set("name", "scan-1")
      .set("count", std::uint64_t{9'007'199'254'740'993ull})  // > 2^53
      .set("negative", std::int64_t{-42})
      .set("pi", 3.141592653589793)
      .set("tiny", 4.9406564584124654e-324)
      .set("flag", true)
      .set("nothing", JsonValue())
      .set("escaped", std::string("line\nbreak \"quoted\" tab\t\x01 end"));
  auto inner = JsonValue::array();
  inner.push_back(1);
  inner.push_back(2.5);
  inner.push_back(JsonValue::object().set("k", "v"));
  doc.set("items", std::move(inner));

  for (const int indent : {0, 2, 4}) {
    const auto reparsed = JsonValue::parse(doc.dump(indent));
    EXPECT_EQ(reparsed, doc) << "indent " << indent;
  }
  // Round-trip is idempotent at the text level too.
  EXPECT_EQ(JsonValue::parse(doc.dump()).dump(), doc.dump());
}

TEST(MetricsJson, ParserRejectsMalformedInput) {
  EXPECT_THROW((void)JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("1 2"), std::runtime_error);
  EXPECT_THROW((void)JsonValue::parse("\"unterminated"), std::runtime_error);
}

TEST(MetricsJson, UnicodeEscapesDecode) {
  const auto value = JsonValue::parse("\"a\\u00e9\\u4e2d\"");
  EXPECT_EQ(value.as_string(), "a\xc3\xa9\xe4\xb8\xad");  // é + U+4E2D
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(Trace, DisabledSpansRecordNothing) {
  omega::util::trace::disable();
  const auto before = omega::util::trace::recorded();
  {
    const omega::util::trace::Span span("test.disabled");
  }
  EXPECT_EQ(omega::util::trace::recorded(), before);
}

TEST(Trace, EnabledSpansRecordAndRingWraps) {
  omega::util::trace::enable(/*capacity=*/4);
  EXPECT_TRUE(omega::util::trace::enabled());
  for (int i = 0; i < 6; ++i) {
    const omega::util::trace::Span span("test.span");
  }
  EXPECT_EQ(omega::util::trace::recorded(), 6u);
  const auto events = omega::util::trace::snapshot();
  ASSERT_EQ(events.size(), 4u);  // ring capacity bounds memory
  for (const auto& event : events) {
    EXPECT_STREQ(event.name, "test.span");
    EXPECT_GE(event.start_s, 0.0);
    EXPECT_GE(event.duration_s, 0.0);
  }
  omega::util::trace::disable();
  EXPECT_FALSE(omega::util::trace::enabled());
}

TEST(Trace, ScanEmitsStageSpans) {
  omega::util::trace::enable();
  omega::core::ScannerOptions options;
  options.config = metrics_config();
  (void)omega::core::scan(metrics_dataset(), options);
  omega::util::trace::disable();

  bool saw_scan = false, saw_extend = false, saw_search = false, saw_ld = false;
  for (const auto& event : omega::util::trace::snapshot()) {
    const std::string name = event.name;
    saw_scan |= name == "scan";
    saw_extend |= name == "scan.ld.extend";
    saw_search |= name == "scan.omega.search";
    saw_ld |= name == "ld.popcount.r2_block";
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_extend);
  EXPECT_TRUE(saw_search);
  EXPECT_TRUE(saw_ld);
}

// ---------------------------------------------------------------------------
// Scan metrics schema + end-to-end per-backend validation
// ---------------------------------------------------------------------------

TEST(ScanMetrics, SchemaDocumentRoundTrips) {
  omega::core::ScannerOptions options;
  options.config = metrics_config();
  const auto result = omega::core::scan(metrics_dataset(), options);

  const auto doc = omega::core::metrics::scan_metrics("unit", result.profile);
  EXPECT_EQ(doc.at("schema").as_string(), omega::core::metrics::kScanSchema);
  EXPECT_EQ(doc.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  EXPECT_EQ(doc.at("name").as_string(), "unit");
  EXPECT_EQ(doc.at("ld_backend").as_string(), "popcount");
  EXPECT_EQ(doc.at("backend").as_string(), "cpu");

  // Counters round-trip exactly (Int kind, not Double).
  const auto& counters = doc.at("counters");
  EXPECT_EQ(counters.at("omega_evaluations").as_uint(),
            result.profile.omega_evaluations);
  EXPECT_EQ(counters.at("r2_fetched").as_uint(), result.profile.r2_fetched);
  EXPECT_EQ(counters.at("positions_scanned").as_uint(),
            result.profile.positions_scanned);

  // A healthy scan reports an all-zero fault-recovery block (schema v3).
  const auto& faults = doc.at("faults");
  EXPECT_EQ(faults.at("injected").as_uint(), 0u);
  EXPECT_EQ(faults.at("errors_caught").as_uint(), 0u);
  EXPECT_EQ(faults.at("retries").as_uint(), 0u);
  EXPECT_EQ(faults.at("quarantined_positions").as_uint(), 0u);
  EXPECT_EQ(faults.at("degradations").as_uint(), 0u);
  EXPECT_EQ(faults.at("backoff_virtual_seconds").as_double(), 0.0);

  // Schema v7: a serial scan reports the work-stealing block with one
  // worker, no spans, and an empty per-worker detail array.
  const auto& sched = doc.at("sched");
  EXPECT_EQ(sched.at("requested_threads").as_uint(), 1u);
  EXPECT_EQ(sched.at("workers").as_uint(), 1u);
  EXPECT_EQ(sched.at("spans").as_uint(), 0u);
  EXPECT_EQ(sched.at("steals").as_uint(), 0u);
  EXPECT_EQ(sched.at("active_workers").as_uint(), 0u);
  EXPECT_TRUE(sched.at("workers_detail").items().empty());

  const auto reparsed = JsonValue::parse(doc.dump());
  EXPECT_EQ(reparsed, doc);
  EXPECT_EQ(reparsed.at("counters").at("omega_evaluations").as_uint(),
            result.profile.omega_evaluations);
}

TEST(ScanMetrics, SchedBlockSerializesPerWorkerDetail) {
  omega::core::ScannerOptions options;
  options.config = metrics_config();
  options.threads = 3;
  const auto result = omega::core::scan(metrics_dataset(), options);

  const auto doc = omega::core::metrics::scan_metrics("unit", result.profile);
  const auto& sched = doc.at("sched");
  EXPECT_EQ(sched.at("requested_threads").as_uint(), 3u);
  EXPECT_EQ(sched.at("workers").as_uint(), 3u);
  EXPECT_EQ(sched.at("spans").as_uint(), result.profile.sched.spans);
  const auto& detail = sched.at("workers_detail").items();
  ASSERT_EQ(detail.size(), 3u);
  std::uint64_t spans = 0;
  for (const auto& worker : detail) {
    spans += worker.at("spans").as_uint();
    EXPECT_GE(worker.at("busy_seconds").as_double(), 0.0);
  }
  EXPECT_EQ(spans, result.profile.sched.spans);
  EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
}

struct BackendCase {
  omega::sweep::Backend backend;
  const char* label;
  bool single_worker;
};

class DetectSweepsMetrics : public ::testing::TestWithParam<BackendCase> {};

TEST_P(DetectSweepsMetrics, CountersMatchWorkloadGroundTruth) {
  const auto& param = GetParam();
  const auto dataset = metrics_dataset();
  const auto config = metrics_config();

  omega::sweep::DetectorOptions options;
  options.config = config;
  options.backend = param.backend;
  options.threads = 3;
  const auto report = omega::sweep::detect_sweeps(dataset, options);
  const auto& profile = report.profile;

  // Ground truth from position analysis alone (never touches the scan path).
  const auto workload = omega::core::analyze_workload(dataset, config);
  std::uint64_t valid_positions = 0;
  for (const auto& position : workload.positions) {
    if (position.geometry.valid) ++valid_positions;
  }

  EXPECT_EQ(profile.omega_evaluations, workload.total_combinations)
      << param.label;
  EXPECT_EQ(profile.positions_scanned, valid_positions) << param.label;
  // Every evaluated position either reset or relocated M — exactly once.
  EXPECT_EQ(profile.relocation.resets + profile.relocation.relocations,
            profile.positions_scanned)
      << param.label;
  EXPECT_GT(profile.relocation.relocations, 0u) << param.label;

  if (param.single_worker) {
    // One DP matrix walking the grid start to end: the r2 fetch count is
    // exactly the workload's with-reuse prediction.
    EXPECT_EQ(profile.r2_fetched, workload.total_r2_with_reuse) << param.label;
  } else {
    // Chunked workers each rebuild M at their chunk start: never fewer
    // fetches than the single-matrix walk, never more than no-reuse.
    EXPECT_GE(profile.r2_fetched, workload.total_r2_with_reuse) << param.label;
    EXPECT_LE(profile.r2_fetched, workload.total_r2_without_reuse)
        << param.label;
  }

  // Stage times: the v2 buckets are the legacy buckets, refined.
  const auto& stages = profile.stages;
  EXPECT_NEAR(stages.ld_total(), profile.ld_seconds, 1e-12) << param.label;
  EXPECT_NEAR(stages.omega_search_seconds, profile.omega_seconds, 1e-12)
      << param.label;
  EXPECT_GT(stages.sum(), 0.0) << param.label;
  EXPECT_LE(stages.dispatch_seconds, stages.omega_search_seconds + 1e-9)
      << param.label;
  if (param.single_worker) {
    // Single worker: bucket times are wall-clock slices of the scan, so they
    // can't exceed (and should dominate) the total.
    EXPECT_LE(stages.sum(), profile.total_seconds + 1e-6) << param.label;
  }

  // Backend-specific accelerator counters.
  if (param.backend == omega::sweep::Backend::GpuSim) {
    const auto spec = omega::hw::tesla_k80();
    std::uint64_t expect_k1 = 0, expect_k2 = 0;
    std::uint64_t expect_k1_omegas = 0, expect_k2_omegas = 0;
    for (const auto& position : workload.positions) {
      if (position.combinations == 0) continue;
      if (omega::hw::gpu::dispatch(spec, position.combinations) ==
          omega::hw::gpu::KernelChoice::Kernel1) {
        ++expect_k1;
        expect_k1_omegas += position.combinations;
      } else {
        ++expect_k2;
        expect_k2_omegas += position.combinations;
      }
    }
    EXPECT_EQ(profile.gpu.kernel1_launches, expect_k1);
    EXPECT_EQ(profile.gpu.kernel2_launches, expect_k2);
    EXPECT_EQ(profile.gpu.kernel1_omegas, expect_k1_omegas);
    EXPECT_EQ(profile.gpu.kernel2_omegas, expect_k2_omegas);
    EXPECT_EQ(profile.gpu.kernel1_omegas + profile.gpu.kernel2_omegas,
              profile.omega_evaluations);
    EXPECT_GT(profile.gpu.modeled_total_seconds, 0.0);
    EXPECT_GT(profile.gpu.bytes_moved, 0u);
    EXPECT_GT(profile.stages.dispatch_seconds, 0.0);
  } else {
    EXPECT_EQ(profile.gpu.kernel1_launches + profile.gpu.kernel2_launches, 0u)
        << param.label;
  }
  if (param.backend == omega::sweep::Backend::FpgaSim) {
    EXPECT_EQ(profile.fpga.hw_omegas + profile.fpga.sw_omegas,
              profile.omega_evaluations);
    EXPECT_GT(profile.fpga.pipeline_cycles, 0u);
    EXPECT_GT(profile.fpga.modeled_seconds, 0.0);
  } else {
    EXPECT_EQ(profile.fpga.hw_omegas + profile.fpga.sw_omegas, 0u)
        << param.label;
  }

  // The report's JSON document reflects the same counters and round-trips.
  const auto doc = JsonValue::parse(report.metrics_json(param.label));
  EXPECT_EQ(doc.at("schema").as_string(), omega::core::metrics::kScanSchema);
  EXPECT_EQ(doc.at("counters").at("omega_evaluations").as_uint(),
            profile.omega_evaluations);
  EXPECT_EQ(doc.at("relocation").at("resets").as_uint(),
            profile.relocation.resets);
  EXPECT_EQ(doc.at("gpu").at("kernel1_omegas").as_uint(),
            profile.gpu.kernel1_omegas);
  EXPECT_EQ(doc.at("fpga").at("hw_omegas").as_uint(), profile.fpga.hw_omegas);
  EXPECT_EQ(JsonValue::parse(doc.dump()), doc);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DetectSweepsMetrics,
    ::testing::Values(
        BackendCase{omega::sweep::Backend::Cpu, "cpu", true},
        BackendCase{omega::sweep::Backend::CpuThreaded, "cpu-mt", false},
        BackendCase{omega::sweep::Backend::GpuSim, "gpu-sim", true},
        BackendCase{omega::sweep::Backend::FpgaSim, "fpga-sim", true}),
    [](const ::testing::TestParamInfo<BackendCase>& info) {
      std::string name = info.param.label;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(ScanMetrics, WriteMetricsJsonProducesParseableFile) {
  omega::sweep::DetectorOptions options;
  options.config = metrics_config();
  const auto report = omega::sweep::detect_sweeps(metrics_dataset(), options);

  const auto path =
      std::filesystem::temp_directory_path() / "omega_metrics_test.json";
  report.write_metrics_json(path.string(), "file-test");

  std::string text;
  {
    std::FILE* file = std::fopen(path.string().c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
      text.append(buffer, n);
    }
    std::fclose(file);
  }
  std::filesystem::remove(path);

  const auto doc = JsonValue::parse(text);
  EXPECT_EQ(doc.at("name").as_string(), "file-test");
  EXPECT_EQ(doc.at("counters").at("omega_evaluations").as_uint(),
            report.profile.omega_evaluations);
}

}  // namespace
