// Tests for landscape post-processing: region merging, gap bridging, and
// quantile thresholds.

#include <gtest/gtest.h>

#include "core/regions.h"
#include "core/scanner.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"

namespace {

omega::core::ScanResult synthetic_landscape(const std::vector<double>& omegas) {
  omega::core::ScanResult result;
  for (std::size_t i = 0; i < omegas.size(); ++i) {
    omega::core::PositionScore score;
    score.position_bp = static_cast<std::int64_t>(i) * 1'000;
    score.max_omega = omegas[i];
    score.valid = omegas[i] >= 0.0;  // negative marks invalid positions
    result.scores.push_back(score);
  }
  return result;
}

TEST(Regions, MergesContiguousRuns) {
  const auto result =
      synthetic_landscape({1, 5, 6, 2, 1, 7, 8, 9, 1, 1, 4});
  const auto regions = omega::core::merge_regions(result, 4.0);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[0].start_bp, 1'000);
  EXPECT_EQ(regions[0].end_bp, 2'000);
  EXPECT_EQ(regions[0].peak_bp, 2'000);
  EXPECT_DOUBLE_EQ(regions[0].peak_omega, 6.0);
  EXPECT_EQ(regions[0].grid_positions, 2u);
  EXPECT_EQ(regions[1].start_bp, 5'000);
  EXPECT_EQ(regions[1].end_bp, 7'000);
  EXPECT_DOUBLE_EQ(regions[1].peak_omega, 9.0);
  EXPECT_EQ(regions[2].start_bp, 10'000);
  EXPECT_EQ(regions[2].grid_positions, 1u);
}

TEST(Regions, GapBridging) {
  const auto result = synthetic_landscape({5, 1, 5, 1, 1, 5});
  // Without bridging: three regions. With max_gap = 1: the first two join
  // (single cold position between), the third stays separate (two cold).
  EXPECT_EQ(omega::core::merge_regions(result, 4.0, 0).size(), 3u);
  const auto bridged = omega::core::merge_regions(result, 4.0, 1);
  ASSERT_EQ(bridged.size(), 2u);
  EXPECT_EQ(bridged[0].start_bp, 0);
  EXPECT_EQ(bridged[0].end_bp, 2'000);
  EXPECT_EQ(bridged[0].grid_positions, 2u);  // hot positions only
}

TEST(Regions, InvalidPositionsAreCold) {
  const auto result = synthetic_landscape({5, -1, 5});
  const auto regions = omega::core::merge_regions(result, 4.0);
  EXPECT_EQ(regions.size(), 2u);
}

TEST(Regions, EmptyAndAllHot) {
  const auto none = omega::core::merge_regions(synthetic_landscape({}), 1.0);
  EXPECT_TRUE(none.empty());
  const auto all = omega::core::merge_regions(
      synthetic_landscape({2, 3, 4}), 1.0);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].grid_positions, 3u);
}

TEST(Regions, QuantileThreshold) {
  const auto result = synthetic_landscape({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(omega::core::landscape_quantile(result, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(omega::core::landscape_quantile(result, 1.0), 10.0);
  EXPECT_NEAR(omega::core::landscape_quantile(result, 0.5), 5.5, 1e-12);
}

TEST(Regions, PlantedSweepBecomesOneRegion) {
  const auto neutral = omega::sim::make_dataset({.snps = 600,
                                                 .samples = 50,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 120.0,
                                                 .seed = 71});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = 500'000;
  sweep.carrier_fraction = 0.97;
  sweep.tract_mean_bp = 250'000.0;
  const auto dataset = omega::sim::apply_sweep(neutral, sweep);

  omega::core::ScannerOptions options;
  options.config.grid_size = 50;
  options.config.max_window = 200'000;
  options.config.min_window = 20'000;
  options.config.max_snps_per_side = 120;
  const auto result = omega::core::scan(dataset, options);

  const double threshold = omega::core::landscape_quantile(result, 0.9);
  const auto regions = omega::core::merge_regions(result, threshold, 1);
  ASSERT_FALSE(regions.empty());
  // The strongest region should cover the sweep locus.
  const auto strongest = std::max_element(
      regions.begin(), regions.end(),
      [](const auto& a, const auto& b) { return a.peak_omega < b.peak_omega; });
  // The omega peak sits on a flank of the homogenized tract, so accept the
  // sweep's hitchhiking footprint (~tract_mean) around the locus.
  EXPECT_LE(strongest->start_bp - 300'000, 500'000);
  EXPECT_GE(strongest->end_bp + 300'000, 500'000);
}

}  // namespace
