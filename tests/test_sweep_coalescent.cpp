// Tests for the structured-coalescent sweep simulator: trajectory math,
// structural validity, and the three sweep signatures arising from first
// principles (no overlay).

#include <gtest/gtest.h>

#include <cmath>

#include "core/scanner.h"
#include "ld/r2.h"
#include "popgen/diversity.h"
#include "sim/sweep_coalescent.h"
#include "util/stats.h"

namespace {

using omega::sim::SweepCoalescentConfig;

TEST(SweepTrajectory, BoundaryConditions) {
  EXPECT_NEAR(omega::sim::sweep_trajectory(0.0, 1'000.0, 0.95), 0.95, 1e-12);
  // Monotone decreasing backward in time.
  double previous = 1.0;
  for (double tau = 0.0; tau < 0.05; tau += 0.002) {
    const double x = omega::sim::sweep_trajectory(tau, 1'000.0, 0.95);
    ASSERT_LT(x, previous + 1e-15);
    ASSERT_GT(x, 0.0);
    previous = x;
  }
}

TEST(SweepTrajectory, DurationReachesEstablishment) {
  for (const double alpha : {100.0, 1'000.0, 10'000.0}) {
    const double duration = omega::sim::sweep_duration(alpha, 0.99);
    EXPECT_GT(duration, 0.0);
    EXPECT_NEAR(omega::sim::sweep_trajectory(duration, alpha, 0.99),
                1.0 / alpha, 1e-9);
    // Classic scaling: duration ~ 2 ln(alpha) / alpha, shrinking with alpha.
    EXPECT_LT(duration, 3.0 * std::log(alpha) / alpha);
  }
}

TEST(SweepCoalescent, ProducesValidDeterministicDataset) {
  SweepCoalescentConfig config;
  config.samples = 30;
  config.theta = 60.0;
  config.seed = 11;
  const auto a = omega::sim::simulate_sweep_coalescent(config);
  const auto b = omega::sim::simulate_sweep_coalescent(config);
  a.validate();
  ASSERT_EQ(a.num_sites(), b.num_sites());
  for (std::size_t s = 0; s < a.num_sites(); ++s) {
    ASSERT_EQ(a.position(s), b.position(s));
    ASSERT_EQ(a.site(s), b.site(s));
  }
  // Every emitted site is polymorphic.
  for (std::size_t s = 0; s < a.num_sites(); ++s) {
    ASSERT_GT(a.derived_count(s), 0u);
    ASSERT_LT(a.derived_count(s), a.num_samples());
  }
}

TEST(SweepCoalescent, RejectsBadParameters) {
  SweepCoalescentConfig config;
  config.samples = 1;
  EXPECT_THROW(omega::sim::simulate_sweep_coalescent(config),
               std::invalid_argument);
  config.samples = 10;
  config.alpha = 1.0;
  EXPECT_THROW(omega::sim::simulate_sweep_coalescent(config),
               std::invalid_argument);
  config.alpha = 100.0;
  config.final_frequency = 0.0;
  EXPECT_THROW(omega::sim::simulate_sweep_coalescent(config),
               std::invalid_argument);
}

TEST(SweepCoalescent, SignatureA_DiversityDipAtSweep) {
  omega::util::RunningStats near_pi, far_pi;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    SweepCoalescentConfig config;
    config.samples = 40;
    config.theta = 120.0;
    config.rho = 400.0;
    config.seed = 100 + rep;
    const auto dataset = omega::sim::simulate_sweep_coalescent(config);
    near_pi.add(omega::popgen::nucleotide_diversity(
        dataset.slice_bp(450'000, 550'000)));
    far_pi.add(omega::popgen::nucleotide_diversity(dataset.slice_bp(0, 100'000)));
  }
  EXPECT_LT(near_pi.mean(), 0.5 * far_pi.mean());
}

TEST(SweepCoalescent, SignatureB_TajimaNegativeNearSweep) {
  omega::util::RunningStats near_d, far_d;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    SweepCoalescentConfig config;
    config.samples = 40;
    config.theta = 120.0;
    config.rho = 400.0;
    config.final_frequency = 0.9;  // incomplete: segregating variation left
    config.seed = 200 + rep;
    const auto dataset = omega::sim::simulate_sweep_coalescent(config);
    near_d.add(omega::popgen::tajimas_d(dataset.slice_bp(400'000, 600'000)));
    far_d.add(omega::popgen::tajimas_d(dataset.slice_bp(0, 200'000)));
  }
  EXPECT_LT(near_d.mean(), far_d.mean());
}

TEST(SweepCoalescent, SignatureC_OmegaPeaksAtSweep) {
  // The omega landscape should place its maximum near the sweep site in a
  // majority of replicates.
  std::size_t hits = 0;
  const std::size_t reps = 9;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    SweepCoalescentConfig config;
    config.samples = 40;
    config.theta = 150.0;
    config.rho = 400.0;
    config.seed = 300 + rep;
    const auto dataset = omega::sim::simulate_sweep_coalescent(config);
    omega::core::ScannerOptions options;
    options.config.grid_size = 25;
    options.config.max_window = 250'000;
    options.config.min_window = 20'000;
    options.config.max_snps_per_side = 120;
    const auto result = omega::core::scan(dataset, options);
    if (std::abs(result.best().position_bp - 500'000) <= 150'000) ++hits;
  }
  EXPECT_GE(hits, reps / 2 + 1);
}

TEST(SweepCoalescent, LargerAlphaWidensFootprint) {
  // Faster sweeps leave less time for escape: diversity at a moderate
  // distance is lower under large alpha.
  omega::util::RunningStats weak, strong;
  for (std::uint64_t rep = 0; rep < 12; ++rep) {
    SweepCoalescentConfig config;
    config.samples = 30;
    config.theta = 120.0;
    config.rho = 400.0;
    config.seed = 400 + rep;
    config.alpha = 200.0;
    weak.add(omega::popgen::nucleotide_diversity(
        omega::sim::simulate_sweep_coalescent(config).slice_bp(250'000,
                                                               400'000)));
    config.alpha = 10'000.0;
    strong.add(omega::popgen::nucleotide_diversity(
        omega::sim::simulate_sweep_coalescent(config).slice_bp(250'000,
                                                               400'000)));
  }
  EXPECT_LT(strong.mean(), weak.mean());
}

}  // namespace
