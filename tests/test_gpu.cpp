// Tests for the GPU execution-model simulator: NDRange semantics, functional
// equivalence of Kernel I / Kernel II / the CPU loop, the dynamic dispatch
// threshold (Eq. 4), the timing model's qualitative properties, and the full
// backend inside the scanner.

#include <gtest/gtest.h>

#include <atomic>

#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/omega_search.h"
#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/gpu/gemm_ld_kernel.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/gpu/ndrange.h"
#include "hw/gpu/omega_kernels.h"
#include "hw/gpu/timing_model.h"
#include "hw/ld_models.h"
#include "ld/gemm.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/prng.h"

namespace {

using omega::hw::gpu::KernelChoice;

TEST(NdRange, PaddingAndGroups) {
  omega::hw::gpu::NdRange range;
  range.global_size = 1000;
  range.local_size = 256;
  EXPECT_EQ(range.padded_global(), 1024u);
  EXPECT_EQ(range.num_groups(), 4u);
}

TEST(NdRange, ExecutesEveryWorkItemOnce) {
  omega::par::ThreadPool pool(3);
  omega::hw::gpu::NdRange range;
  range.global_size = 777;
  range.local_size = 64;
  std::vector<std::atomic<int>> hits(range.padded_global());
  omega::hw::gpu::enqueue_ndrange(pool, range, [&](const omega::hw::gpu::WorkItem& item) {
    EXPECT_EQ(item.global_id, item.group_id * item.local_size + item.local_id);
    hits[item.global_id].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

struct KernelFixture : ::testing::Test {
  void SetUp() override {
    dataset = omega::sim::make_dataset({.snps = 120,
                                        .samples = 32,
                                        .locus_length_bp = 1'000'000,
                                        .rho = 20.0,
                                        .seed = 77});
    config.grid_size = 6;
    config.max_window = 400'000;
    config.min_window = 10'000;
    grid = omega::core::build_grid(dataset, config);
    snps = std::make_unique<omega::ld::SnpMatrix>(dataset);
    engine = std::make_unique<omega::ld::PopcountLd>(*snps);
  }

  omega::io::Dataset dataset;
  omega::core::OmegaConfig config;
  std::vector<omega::core::GridPosition> grid;
  std::unique_ptr<omega::ld::SnpMatrix> snps;
  std::unique_ptr<omega::ld::PopcountLd> engine;
  omega::par::ThreadPool pool{2};
};

TEST_F(KernelFixture, KernelsAgreeWithEachOtherExactly) {
  for (const auto& position : grid) {
    if (!position.valid) continue;
    omega::core::DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, *engine);
    const auto buffers = omega::core::pack_position(m, position);

    const auto k1 = omega::hw::gpu::run_kernel1(pool, buffers, 64);
    const auto k2 = omega::hw::gpu::run_kernel2(pool, buffers, 64, 37);
    const auto k2_wide = omega::hw::gpu::run_kernel2(pool, buffers, 128, 4096);
    // Identical float arithmetic and tie-breaking: bitwise identical results
    // regardless of the work decomposition.
    ASSERT_EQ(k1.max_omega, k2.max_omega);
    ASSERT_EQ(k1.flat_index, k2.flat_index);
    ASSERT_EQ(k1.max_omega, k2_wide.max_omega);
    ASSERT_EQ(k1.flat_index, k2_wide.flat_index);
    ASSERT_EQ(k1.evaluated, buffers.combinations());
  }
}

TEST_F(KernelFixture, KernelsMatchCpuSearch) {
  for (const auto& position : grid) {
    if (!position.valid) continue;
    omega::core::DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, *engine);
    const auto buffers = omega::core::pack_position(m, position);
    const auto gpu = omega::hw::gpu::run_kernel1(pool, buffers, 64);
    const auto cpu = omega::core::max_omega_search(m, position);
    ASSERT_NEAR(static_cast<double>(gpu.max_omega), cpu.max_omega,
                1e-4 * (1.0 + cpu.max_omega));
  }
}

TEST(GpuDispatch, ThresholdFollowsEq4) {
  const auto k80 = omega::hw::tesla_k80();
  EXPECT_EQ(k80.nthr(), 13ull * 32 * 32);
  EXPECT_EQ(omega::hw::gpu::dispatch(k80, k80.nthr() - 1),
            KernelChoice::Kernel1);
  EXPECT_EQ(omega::hw::gpu::dispatch(k80, k80.nthr()),
            KernelChoice::Kernel2);

  const auto radeon = omega::hw::radeon_hd8750m();
  EXPECT_EQ(radeon.nthr(), 6ull * 64 * 32);
}

// Eq. 4 boundary: Kernel I serves exactly the workloads that underfill the
// device (n_omega < Nthr = NCU * Ws * 32); at Nthr and above — where every
// thread has at least one omega — Kernel II takes over. Checked at the
// threshold and one omega either side, on both evaluated devices.
TEST(GpuDispatch, BoundaryAtExactlyNthr) {
  for (const auto& spec :
       {omega::hw::tesla_k80(), omega::hw::radeon_hd8750m()}) {
    const std::uint64_t nthr = spec.nthr();
    EXPECT_EQ(nthr, static_cast<std::uint64_t>(spec.compute_units) *
                        spec.warp_size * 32)
        << spec.name;
    EXPECT_EQ(omega::hw::gpu::dispatch(spec, nthr - 1), KernelChoice::Kernel1)
        << spec.name << ": one omega below the threshold must pick Kernel I";
    EXPECT_EQ(omega::hw::gpu::dispatch(spec, nthr), KernelChoice::Kernel2)
        << spec.name << ": exactly Nthr omegas must pick Kernel II";
    EXPECT_EQ(omega::hw::gpu::dispatch(spec, nthr + 1), KernelChoice::Kernel2)
        << spec.name << ": one omega above the threshold must pick Kernel II";
  }
}

TEST(GpuTiming, KernelTimeIncreasesWithWork) {
  const auto spec = omega::hw::tesla_k80();
  double previous = 0.0;
  for (std::uint64_t n = 1; n <= 1u << 24; n <<= 2) {
    const double t = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel2, n);
    ASSERT_GT(t, previous);
    previous = t;
  }
}

TEST(GpuTiming, ThroughputSaturatesNearPeak) {
  const auto spec = omega::hw::tesla_k80();
  const std::uint64_t huge = 1ull << 32;
  const double t = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel2, huge);
  const double throughput = static_cast<double>(huge) / t;
  EXPECT_GT(throughput, 0.95 * spec.peak_k2_omega_per_s);
  EXPECT_LE(throughput, spec.peak_k2_omega_per_s);
}

TEST(GpuTiming, Kernel1WinsSmallKernel2WinsLarge) {
  const auto spec = omega::hw::tesla_k80();
  const double small1 = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel1, 500);
  const double small2 = omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel2, 500);
  EXPECT_LT(small1, small2);
  const double large1 =
      omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel1, 50'000'000);
  const double large2 =
      omega::hw::gpu::kernel_time(spec, KernelChoice::Kernel2, 50'000'000);
  EXPECT_LT(large2, large1);
}

TEST(GpuTiming, PaddingRoundsUpToWorkgroupGranule) {
  const auto spec = omega::hw::tesla_k80();
  const std::uint64_t granule = spec.workgroup_size * sizeof(float);
  const auto padded = omega::hw::gpu::padded_bytes(spec, 1);
  EXPECT_EQ(padded % granule, 0u);
  EXPECT_GE(padded, granule);
  EXPECT_GE(omega::hw::gpu::padded_bytes(spec, 100'000), 100'000u);
}

TEST(GpuTiming, CompleteCostDecomposes) {
  const auto spec = omega::hw::tesla_k80();
  const auto cost = omega::hw::gpu::complete_position_cost(
      spec, KernelChoice::Kernel2, 1'000'000, 4'000'000);
  EXPECT_GT(cost.prep_s, 0.0);
  EXPECT_GT(cost.transfer_s, 0.0);
  EXPECT_GT(cost.kernel_s, 0.0);
  EXPECT_LE(cost.total_s, cost.prep_s + cost.transfer_s + cost.kernel_s);
  EXPECT_GE(cost.total_s, cost.prep_s + cost.kernel_s);
}

TEST(GpuTiming, PackBandwidthDegradesBeyondLlc) {
  const auto spec = omega::hw::tesla_k80();
  const auto small = omega::hw::gpu::complete_position_cost(
      spec, KernelChoice::Kernel2, 1000, 1 << 16);
  const auto large = omega::hw::gpu::complete_position_cost(
      spec, KernelChoice::Kernel2, 1000, 1 << 28);
  const double small_rate = static_cast<double>(1 << 16) / small.prep_s;
  const double large_rate = static_cast<double>(1 << 28) / large.prep_s;
  EXPECT_LT(large_rate, small_rate);
}

TEST(GpuBackend, ScanMatchesCpuBackend) {
  const auto dataset = omega::sim::make_dataset({.snps = 130,
                                                 .samples = 24,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 15.0,
                                                 .seed = 88});
  omega::core::ScannerOptions options;
  options.config.grid_size = 10;
  options.config.max_window = 300'000;
  options.config.min_window = 10'000;

  const auto cpu = omega::core::scan(dataset, options);

  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  omega::hw::gpu::GpuOmegaBackend backend(spec, pool);
  const auto gpu = omega::core::scan(
      dataset, options, [&] { return omega::core::borrow_backend(backend); });
  ASSERT_EQ(cpu.scores.size(), gpu.scores.size());
  for (std::size_t g = 0; g < cpu.scores.size(); ++g) {
    ASSERT_NEAR(cpu.scores[g].max_omega, gpu.scores[g].max_omega,
                1e-4 * (1.0 + cpu.scores[g].max_omega))
        << "grid " << g;
  }
  const auto& accounting = backend.accounting();
  EXPECT_EQ(accounting.omega_evaluations, cpu.profile.omega_evaluations);
  EXPECT_GT(accounting.modeled_total_seconds, 0.0);
  EXPECT_GT(accounting.bytes_moved, 0u);
  EXPECT_GT(accounting.positions_kernel1 + accounting.positions_kernel2, 0u);
}

TEST(GpuBackend, OrderSwitchIsValueNeutral) {
  const auto dataset = omega::sim::make_dataset({.snps = 90,
                                                 .samples = 20,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 10.0,
                                                 .seed = 89});
  omega::core::ScannerOptions options;
  options.config.grid_size = 7;
  options.config.max_window = 500'000;
  options.config.min_window = 20'000;

  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::radeon_hd8750m();
  auto run = [&](bool order_switch) {
    omega::hw::gpu::GpuBackendOptions gpu_options;
    gpu_options.order_switch = order_switch;
    return omega::core::scan(dataset, options, [&] {
      return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                               gpu_options);
    });
  };
  const auto with_switch = run(true);
  const auto without_switch = run(false);
  for (std::size_t g = 0; g < with_switch.scores.size(); ++g) {
    ASSERT_DOUBLE_EQ(with_switch.scores[g].max_omega,
                     without_switch.scores[g].max_omega);
    ASSERT_EQ(with_switch.scores[g].best_a, without_switch.scores[g].best_a);
    ASSERT_EQ(with_switch.scores[g].best_b, without_switch.scores[g].best_b);
  }
}

TEST(GpuBackend, ForcedPoliciesAgree) {
  const auto dataset = omega::sim::make_dataset({.snps = 80,
                                                 .samples = 20,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 10.0,
                                                 .seed = 90});
  omega::core::ScannerOptions options;
  options.config.grid_size = 5;
  options.config.max_window = 400'000;
  options.config.min_window = 10'000;

  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  auto run = [&](omega::hw::gpu::KernelPolicy policy) {
    omega::hw::gpu::GpuBackendOptions gpu_options;
    gpu_options.policy = policy;
    return omega::core::scan(dataset, options, [&] {
      return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                               gpu_options);
    });
  };
  const auto k1 = run(omega::hw::gpu::KernelPolicy::ForceKernel1);
  const auto k2 = run(omega::hw::gpu::KernelPolicy::ForceKernel2);
  for (std::size_t g = 0; g < k1.scores.size(); ++g) {
    ASSERT_DOUBLE_EQ(k1.scores[g].max_omega, k2.scores[g].max_omega);
  }
}

// ---------------------------------------------------------------------------
// GPU LD kernel (Binder et al. SNP-comparison framework on the simulated
// device)
// ---------------------------------------------------------------------------

TEST(GpuLdKernel, MatchesCpuGemmCounts) {
  const auto dataset = omega::sim::make_dataset({.snps = 70,
                                                 .samples = 150,
                                                 .locus_length_bp = 500'000,
                                                 .rho = 10.0,
                                                 .seed = 93});
  const omega::ld::SnpMatrix snps(dataset);
  omega::par::ThreadPool pool(2);
  std::vector<std::int32_t> gpu(40 * 55), cpu(40 * 55);
  omega::hw::gpu::pair_count_block_gpu(pool, snps, 10, 50, 5, 60, gpu.data(), 55);
  omega::ld::pair_count_block_gemm(snps, 10, 50, 5, 60, cpu.data(), 55);
  EXPECT_EQ(gpu, cpu);
}

TEST(GpuLdKernel, OddTileSizesCoverEverything) {
  const auto dataset = omega::sim::make_dataset({.snps = 45,
                                                 .samples = 33,
                                                 .locus_length_bp = 500'000,
                                                 .rho = 5.0,
                                                 .seed = 94});
  const omega::ld::SnpMatrix snps(dataset);
  omega::par::ThreadPool pool(2);
  std::vector<std::int32_t> reference(45 * 45);
  omega::ld::pair_count_block_popcount(snps, 0, 45, 0, 45, reference.data(), 45);
  for (const std::size_t tile : {1, 3, 16, 64}) {
    std::vector<std::int32_t> gpu(45 * 45);
    omega::hw::gpu::pair_count_block_gpu(pool, snps, 0, 45, 0, 45, gpu.data(),
                                         45, omega::ld::PackSource::Data,
                                         omega::ld::PackSource::Data, tile);
    ASSERT_EQ(gpu, reference) << "tile " << tile;
  }
}

TEST(GpuLdEngine, ScanWithGpuLdMatchesPopcountScan) {
  const auto dataset = omega::sim::make_dataset({.snps = 100,
                                                 .samples = 40,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 12.0,
                                                 .seed = 95});
  omega::core::ScannerOptions options;
  options.config.grid_size = 8;
  options.config.max_window = 300'000;
  options.config.min_window = 10'000;
  const auto reference = omega::core::scan(dataset, options);

  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();
  options.ld_factory = [&](const omega::ld::SnpMatrix& snps) {
    return std::make_unique<omega::hw::gpu::GpuLdEngine>(snps, pool, spec);
  };
  const auto gpu_ld = omega::core::scan(dataset, options);
  ASSERT_EQ(reference.scores.size(), gpu_ld.scores.size());
  for (std::size_t g = 0; g < reference.scores.size(); ++g) {
    // Same counts -> identical float r2 -> identical scan.
    ASSERT_DOUBLE_EQ(reference.scores[g].max_omega, gpu_ld.scores[g].max_omega);
    ASSERT_EQ(reference.scores[g].best_a, gpu_ld.scores[g].best_a);
  }
}

TEST(GpuLdEngine, MissingDataPairwiseComplete) {
  // Inject missing calls and compare against the CPU popcount engine.
  auto base = omega::sim::make_dataset({.snps = 60,
                                        .samples = 80,
                                        .locus_length_bp = 500'000,
                                        .rho = 8.0,
                                        .seed = 96});
  omega::util::Xoshiro256 rng(77);
  std::vector<std::int64_t> positions(base.positions());
  std::vector<std::vector<std::uint8_t>> rows(base.num_sites());
  for (std::size_t s = 0; s < base.num_sites(); ++s) {
    rows[s] = base.site(s);
    for (auto& allele : rows[s]) {
      if (rng.uniform() < 0.1) allele = omega::io::Dataset::kMissing;
    }
  }
  const omega::io::Dataset dataset(std::move(positions), std::move(rows),
                                   base.locus_length_bp());
  const omega::ld::SnpMatrix snps(dataset);
  ASSERT_TRUE(snps.has_missing());

  omega::par::ThreadPool pool(2);
  const omega::hw::gpu::GpuLdEngine gpu_engine(snps, pool, omega::hw::tesla_k80());
  const omega::ld::PopcountLd cpu_engine(snps);
  std::vector<float> gpu(60 * 60), cpu(60 * 60);
  gpu_engine.r2_block(0, 60, 0, 60, gpu.data(), 60);
  cpu_engine.r2_block(0, 60, 0, 60, cpu.data(), 60);
  EXPECT_EQ(gpu, cpu);
  EXPECT_EQ(gpu_engine.accounting().kernel_launches, 4u);
  EXPECT_EQ(gpu_engine.accounting().pairs_computed, 60u * 60u);
}

TEST(GpuLdModel, AnchoredToTableIII) {
  EXPECT_NEAR(omega::hw::gpu_ld_speedup(500), 2.3, 0.5);
  EXPECT_NEAR(omega::hw::gpu_ld_speedup(7'000), 12.5, 2.0);
  EXPECT_NEAR(omega::hw::gpu_ld_speedup(60'000), 38.9, 5.0);
  // Monotone in sample count.
  EXPECT_LT(omega::hw::gpu_ld_speedup(1'000), omega::hw::gpu_ld_speedup(10'000));
}

TEST(FpgaLdModel, InterpolatesPublishedPoints) {
  EXPECT_NEAR(omega::hw::fpga_ld_throughput(500), 535e6, 1e6);
  EXPECT_NEAR(omega::hw::fpga_ld_throughput(7'000), 38.2e6, 1e5);
  EXPECT_NEAR(omega::hw::fpga_ld_throughput(60'000), 4.5e6, 1e5);
  const double mid = omega::hw::fpga_ld_throughput(2'000);
  EXPECT_LT(mid, 535e6);
  EXPECT_GT(mid, 38.2e6);
}

}  // namespace
