// Heterogeneous co-scheduler tests: HeteroSplit parsing, config validation,
// the deterministic planner (fixed and auto weights, the zero-cost
// equal-fallback guard shared with the span engine), the bitwise-identity
// guarantee against the serial CPU scan (in-memory and streaming, clean and
// under fault injection), straggler/fault re-dispatch back to the CPU,
// cpu<->hetero checkpoint resume interoperability, the schema v10 "hetero"
// metrics block, the dispatch_seconds accounting regression (empty positions
// must still charge their pack cost), and the analyze_workload covered-range
// mirror cross-checked against DpMatrix::extend fetch counters over
// partition-restricted and seam-carryover replay sequences.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/dp_matrix.h"
#include "core/grid.h"
#include "core/hetero_scheduler.h"
#include "core/metrics_json.h"
#include "core/scan_driver.h"
#include "core/scanner.h"
#include "core/span_engine.h"
#include "core/stream_scanner.h"
#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/hetero_profile.h"
#include "io/chunk_reader.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "sweep/detector.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/progress.h"

namespace {

using omega::core::CpuKernelKind;
using omega::core::DpMatrix;
using omega::core::GridPosition;
using omega::core::HeteroConfig;
using omega::core::HeteroPlan;
using omega::core::HeteroSplit;
using omega::core::OmegaConfig;
using omega::core::ScannerOptions;
using omega::core::ScanResult;
using omega::core::StreamScanOptions;
using omega::core::detail::build_scan_spans;
using omega::core::detail::ScanSpan;
using omega::io::DatasetChunkReader;
using omega::util::CancelReason;
using omega::util::CancelToken;
using omega::util::fault::FaultMode;
using omega::util::fault::FaultPlan;

omega::io::Dataset hetero_dataset(std::uint64_t seed = 6060,
                                  std::size_t sites = 320) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = 24,
                                   .locus_length_bp = 320'000,
                                   .rho = 40.0,
                                   .seed = seed});
}

ScannerOptions hetero_options() {
  ScannerOptions options;
  options.config.grid_size = 48;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 260;
  options.config.min_window = 30;
  return options;
}

void expect_identical(const ScanResult& hetero, const ScanResult& serial) {
  ASSERT_EQ(hetero.scores.size(), serial.scores.size());
  for (std::size_t i = 0; i < hetero.scores.size(); ++i) {
    EXPECT_EQ(hetero.scores[i].position_bp, serial.scores[i].position_bp) << i;
    EXPECT_EQ(hetero.scores[i].valid, serial.scores[i].valid) << i;
    EXPECT_EQ(hetero.scores[i].quarantined, serial.scores[i].quarantined) << i;
    if (!hetero.scores[i].valid) continue;
    EXPECT_EQ(std::memcmp(&hetero.scores[i].max_omega,
                          &serial.scores[i].max_omega, sizeof(double)),
              0)
        << i << ": " << hetero.scores[i].max_omega << " vs "
        << serial.scores[i].max_omega;
    EXPECT_EQ(hetero.scores[i].best_a, serial.scores[i].best_a) << i;
    EXPECT_EQ(hetero.scores[i].best_b, serial.scores[i].best_b) << i;
    EXPECT_EQ(hetero.scores[i].evaluated, serial.scores[i].evaluated) << i;
  }
  EXPECT_EQ(hetero.profile.positions_scanned,
            serial.profile.positions_scanned);
  EXPECT_EQ(hetero.profile.omega_evaluations,
            serial.profile.omega_evaluations);
}

/// Shared pool backing every GPU backend instance a test config creates; the
/// config closures capture it by reference, so it must outlive the scans.
omega::par::ThreadPool& shared_gpu_pool() {
  static omega::par::ThreadPool pool(2);
  return pool;
}

HeteroConfig make_config(const std::string& split, FaultPlan fault_plan = {}) {
  omega::hw::HeteroProfileOptions profile_options;
  profile_options.split = HeteroSplit::parse(split);
  profile_options.fault_plan = fault_plan;
  return omega::hw::default_hetero_config(profile_options, shared_gpu_pool());
}

// ---------------------------------------------------------------------------
// HeteroSplit parsing
// ---------------------------------------------------------------------------

TEST(HeteroSplitParse, AutoAndEmptyMeanAuto) {
  EXPECT_TRUE(HeteroSplit::parse("auto").auto_split);
  EXPECT_TRUE(HeteroSplit::parse("").auto_split);
  EXPECT_EQ(HeteroSplit::parse("auto").name(), "auto");
}

TEST(HeteroSplitParse, FixedTriple) {
  const auto split = HeteroSplit::parse("2:1:0.5");
  EXPECT_FALSE(split.auto_split);
  EXPECT_DOUBLE_EQ(split.cpu, 2.0);
  EXPECT_DOUBLE_EQ(split.gpu, 1.0);
  EXPECT_DOUBLE_EQ(split.fpga, 0.5);
  EXPECT_EQ(split.name(), "2:1:0.5");
  // Zero weights are allowed as long as one partition keeps work.
  EXPECT_DOUBLE_EQ(HeteroSplit::parse("1:0:0").gpu, 0.0);
}

TEST(HeteroSplitParse, NameTrimsTrailingZeros) {
  EXPECT_EQ(HeteroSplit::parse("2.50:1.0:1").name(), "2.5:1:1");
}

TEST(HeteroSplitParse, RejectsMalformedInput) {
  EXPECT_THROW((void)HeteroSplit::parse("1:2"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("1:2:3:4"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("a:b:c"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("1:x:1"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("-1:1:1"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("0:0:0"), std::invalid_argument);
  EXPECT_THROW((void)HeteroSplit::parse("1:1:1extra"), std::invalid_argument);
}

TEST(HeteroConfigValidate, RejectsIncompleteConfigs) {
  HeteroConfig config;  // no cpu model
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config = make_config("auto");
  EXPECT_NO_THROW(config.validate());

  HeteroConfig bad_straggler = make_config("auto");
  bad_straggler.straggler_multiplier = 0.0;
  EXPECT_THROW(bad_straggler.validate(), std::invalid_argument);
  bad_straggler = make_config("auto");
  bad_straggler.straggler_min_seconds = -1.0;
  EXPECT_THROW(bad_straggler.validate(), std::invalid_argument);

  HeteroConfig no_factory = make_config("auto");
  no_factory.accelerators[0].backend_factory = nullptr;
  EXPECT_THROW(no_factory.validate(), std::invalid_argument);
  HeteroConfig no_name = make_config("auto");
  no_name.accelerators[1].name.clear();
  EXPECT_THROW(no_name.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

std::vector<GridPosition> planner_grid(const omega::io::Dataset& dataset,
                                       const OmegaConfig& config) {
  return omega::core::build_grid(dataset, config);
}

void expect_segments_tile(const HeteroPlan& plan, std::size_t begin,
                          std::size_t end) {
  ASSERT_FALSE(plan.segments.empty());
  EXPECT_EQ(plan.segments.front().begin, begin);
  std::size_t cursor = begin;
  for (const auto& segment : plan.segments) {
    EXPECT_EQ(segment.begin, cursor);
    EXPECT_GE(segment.end, segment.begin);
    cursor = segment.end;
  }
  EXPECT_EQ(cursor, end);
}

TEST(HeteroPlanner, FixedWeightsSliceProportionallyAndDeterministically) {
  const auto dataset = hetero_dataset();
  const auto options = hetero_options();
  const auto grid = planner_grid(dataset, options.config);
  const auto config = make_config("1:1:1");

  const HeteroPlan plan =
      omega::core::plan_hetero_split(grid, 0, grid.size(), config);
  ASSERT_EQ(plan.segments.size(), 3u);
  EXPECT_FALSE(plan.equal_fallback);
  EXPECT_EQ(plan.segments[0].backend, "cpu");
  expect_segments_tile(plan, 0, grid.size());

  std::uint64_t planned = 0;
  for (const auto& segment : plan.segments) {
    EXPECT_NEAR(segment.weight, 1.0 / 3.0, 1e-12);
    EXPECT_GT(segment.planned_positions, 0u);
    planned += segment.planned_positions;
  }
  std::uint64_t total_valid = 0;
  for (const auto& p : grid) total_valid += p.valid ? 1 : 0;
  EXPECT_EQ(planned, total_valid);

  // Same inputs, same plan — the planner is a pure function of the grid.
  const HeteroPlan replay =
      omega::core::plan_hetero_split(grid, 0, grid.size(), config);
  ASSERT_EQ(replay.segments.size(), plan.segments.size());
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    EXPECT_EQ(replay.segments[s].begin, plan.segments[s].begin);
    EXPECT_EQ(replay.segments[s].end, plan.segments[s].end);
    EXPECT_EQ(replay.segments[s].planned_positions,
              plan.segments[s].planned_positions);
  }
}

TEST(HeteroPlanner, ZeroWeightPartitionsGetEmptySegments) {
  const auto dataset = hetero_dataset();
  const auto options = hetero_options();
  const auto grid = planner_grid(dataset, options.config);

  std::uint64_t total_valid = 0;
  for (const auto& p : grid) total_valid += p.valid ? 1 : 0;

  // Zero-weight partitions may still absorb trailing invalid positions when
  // the boundary walk closes them (cost zero, no work), so assert on the
  // planned valid positions rather than raw segment extents.
  const HeteroPlan cpu_only =
      omega::core::plan_hetero_split(grid, 0, grid.size(),
                                     make_config("1:0:0"));
  ASSERT_EQ(cpu_only.segments.size(), 3u);
  expect_segments_tile(cpu_only, 0, grid.size());
  EXPECT_EQ(cpu_only.segments[0].planned_positions, total_valid);
  EXPECT_EQ(cpu_only.segments[1].planned_positions, 0u);
  EXPECT_EQ(cpu_only.segments[2].planned_positions, 0u);

  const HeteroPlan gpu_only =
      omega::core::plan_hetero_split(grid, 0, grid.size(),
                                     make_config("0:1:0"));
  EXPECT_EQ(gpu_only.segments[0].begin, gpu_only.segments[0].end);
  EXPECT_GT(gpu_only.segments[1].end, gpu_only.segments[1].begin);
  EXPECT_EQ(gpu_only.segments[0].planned_positions, 0u);
  EXPECT_EQ(gpu_only.segments[1].planned_positions, total_valid);
  EXPECT_EQ(gpu_only.segments[2].planned_positions, 0u);
}

TEST(HeteroPlanner, AutoWeightsFollowModeledThroughput) {
  const auto dataset = hetero_dataset();
  const auto options = hetero_options();
  const auto grid = planner_grid(dataset, options.config);

  // One accelerator modeled 9x faster than the CPU: auto weights are the
  // inverse modeled seconds, so it should plan ~90% of the cost.
  HeteroConfig config;
  config.split = HeteroSplit::parse("auto");
  config.cpu_modeled_seconds = [](const GridPosition& p) {
    return p.valid ? 9e-6 * static_cast<double>(p.combinations()) : 0.0;
  };
  omega::core::HeteroPartitionSpec fast;
  fast.name = "fast-sim";
  fast.modeled_seconds = [](const GridPosition& p) {
    return p.valid ? 1e-6 * static_cast<double>(p.combinations()) : 0.0;
  };
  fast.backend_factory = [] {
    return std::make_unique<omega::core::CpuOmegaBackend>(CpuKernelKind::Auto);
  };
  config.accelerators.push_back(std::move(fast));

  const HeteroPlan plan =
      omega::core::plan_hetero_split(grid, 0, grid.size(), config);
  ASSERT_EQ(plan.segments.size(), 2u);
  EXPECT_NEAR(plan.segments[0].weight, 0.1, 1e-9);
  EXPECT_NEAR(plan.segments[1].weight, 0.9, 1e-9);
  EXPECT_GT(plan.segments[1].planned_positions,
            plan.segments[0].planned_positions);
  expect_segments_tile(plan, 0, grid.size());
}

// ---------------------------------------------------------------------------
// Zero-cost degenerate grids: the planner and span-engine equal fallback
// ---------------------------------------------------------------------------

/// Valid positions whose estimated cost is exactly zero (collapsed window
/// geometry: zero admissible borders and zero width). The proportional
/// boundary walk would divide by a zero total without the fallback.
std::vector<GridPosition> zero_cost_grid(std::size_t n) {
  std::vector<GridPosition> grid;
  for (std::size_t i = 0; i < n; ++i) {
    GridPosition p;
    p.position_bp = static_cast<std::int64_t>(i);
    p.valid = true;
    p.lo = 1;
    p.hi = 0;
    p.c = 0;
    p.a_max = 0;
    p.b_min = 1;
    grid.push_back(p);
  }
  return grid;
}

TEST(DegenerateGrid, CostIsZeroYetValid) {
  const auto grid = zero_cost_grid(4);
  for (const auto& p : grid) {
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.combinations(), 0u);
    EXPECT_EQ(omega::core::estimate_position_cost(p), 0u);
  }
}

TEST(DegenerateGrid, PlannerFallsBackToEqualPositionCounts) {
  const auto grid = zero_cost_grid(12);
  const auto config = make_config("1:1:1");
  const HeteroPlan plan =
      omega::core::plan_hetero_split(grid, 0, grid.size(), config);
  EXPECT_TRUE(plan.equal_fallback);
  ASSERT_EQ(plan.segments.size(), 3u);
  expect_segments_tile(plan, 0, grid.size());
  // One budget unit per valid position: 12 positions over 3 equal weights.
  for (const auto& segment : plan.segments) {
    EXPECT_EQ(segment.planned_positions, 4u);
  }
  // Deterministic: replay yields identical boundaries.
  const HeteroPlan replay =
      omega::core::plan_hetero_split(grid, 0, grid.size(), config);
  for (std::size_t s = 0; s < plan.segments.size(); ++s) {
    EXPECT_EQ(replay.segments[s].begin, plan.segments[s].begin);
    EXPECT_EQ(replay.segments[s].end, plan.segments[s].end);
  }
}

TEST(DegenerateGrid, BuildScanSpansFallsBackToEqualCounts) {
  const auto grid = zero_cost_grid(8);
  const auto spans = build_scan_spans(grid, 0, grid.size(), /*workers=*/4);
  ASSERT_FALSE(spans.empty());
  // Spans tile the range and spread the valid positions evenly (one unit of
  // budget each) instead of collapsing into a single span.
  EXPECT_EQ(spans.front().begin, 0u);
  EXPECT_EQ(spans.back().end, grid.size());
  for (std::size_t s = 1; s < spans.size(); ++s) {
    EXPECT_EQ(spans[s].begin, spans[s - 1].end);
  }
  EXPECT_EQ(spans.size(), 8u);  // min(workers * 4, total_valid)
  std::uint64_t total_valid = 0;
  for (const ScanSpan& span : spans) {
    EXPECT_EQ(span.valid_positions, 1u);
    total_valid += span.valid_positions;
  }
  EXPECT_EQ(total_valid, 8u);
  // Deterministic across calls.
  const auto replay = build_scan_spans(grid, 0, grid.size(), 4);
  ASSERT_EQ(replay.size(), spans.size());
  for (std::size_t s = 0; s < spans.size(); ++s) {
    EXPECT_EQ(replay[s].begin, spans[s].begin);
    EXPECT_EQ(replay[s].end, spans[s].end);
  }
}

// ---------------------------------------------------------------------------
// Bitwise identity: hetero == serial CPU, in memory and streaming
// ---------------------------------------------------------------------------

TEST(HeteroIdentity, AutoSplitMatchesSerialCpuBitwise) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const auto serial = omega::core::scan(dataset, options);

  const HeteroConfig config = make_config("auto");
  options.hetero = &config;
  options.threads = 4;
  const auto hetero = omega::core::scan(dataset, options);
  expect_identical(hetero, serial);

  EXPECT_EQ(hetero.profile.omega_backend, "hetero");
  const auto& stats = hetero.profile.hetero;
  EXPECT_TRUE(stats.enabled);
  EXPECT_EQ(stats.split, "auto");
  EXPECT_EQ(stats.plans, 1u);
  ASSERT_EQ(stats.partitions.size(), 3u);
  EXPECT_EQ(stats.partitions[0].backend, "cpu");
  std::uint64_t planned = 0, actual = 0;
  for (const auto& partition : stats.partitions) {
    planned += partition.planned_positions;
    actual += partition.actual_positions;
  }
  EXPECT_EQ(planned, serial.profile.positions_scanned);
  EXPECT_EQ(actual, serial.profile.positions_scanned);
}

TEST(HeteroIdentity, EveryFixedSplitMatchesSerialCpuBitwise) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const auto serial = omega::core::scan(dataset, options);

  for (const char* split : {"1:0:0", "0:1:0", "0:0:1", "3:2:1", "1:4:4"}) {
    const HeteroConfig config = make_config(split);
    options.hetero = &config;
    options.threads = 4;
    const auto hetero = omega::core::scan(dataset, options);
    expect_identical(hetero, serial);
    EXPECT_EQ(hetero.profile.hetero.split, split) << split;
  }
}

TEST(HeteroIdentity, StreamingMatchesSerialStreamBitwise) {
  const auto dataset = hetero_dataset(7171);
  auto options = hetero_options();

  DatasetChunkReader serial_reader(dataset);
  const auto serial = omega::core::stream_scan(serial_reader, options);

  const HeteroConfig config = make_config("auto");
  options.hetero = &config;
  options.threads = 4;
  for (const std::size_t chunk_sites : {1000u, 90u}) {
    StreamScanOptions stream_options;
    stream_options.chunk_sites = chunk_sites;
    DatasetChunkReader reader(dataset);
    const auto hetero =
        omega::core::stream_scan(reader, options, stream_options);
    expect_identical(hetero, serial);
    EXPECT_TRUE(hetero.profile.hetero.enabled);
    // One plan per chunk; seams stay per-worker like the MT engine.
    EXPECT_EQ(hetero.profile.hetero.plans, hetero.profile.stream.chunks);
    EXPECT_EQ(hetero.profile.stream.seam_carryovers, 0u);
  }
}

TEST(HeteroIdentity, TransientFaultsConvergeToCleanScores) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const auto clean = omega::core::scan(dataset, options);

  FaultPlan plan;
  plan.mode = FaultMode::TransientNan;
  plan.rate = 0.4;
  plan.seed = 33;
  options.recovery.max_retries = 64;
  const HeteroConfig config = make_config("auto", plan);
  options.hetero = &config;
  options.threads = 4;
  const auto hetero = omega::core::scan(dataset, options);

  ASSERT_EQ(hetero.scores.size(), clean.scores.size());
  for (std::size_t i = 0; i < hetero.scores.size(); ++i) {
    EXPECT_EQ(hetero.scores[i].valid, clean.scores[i].valid) << i;
    if (!hetero.scores[i].valid) continue;
    EXPECT_EQ(hetero.scores[i].max_omega, clean.scores[i].max_omega) << i;
    EXPECT_EQ(hetero.scores[i].best_a, clean.scores[i].best_a) << i;
    EXPECT_EQ(hetero.scores[i].best_b, clean.scores[i].best_b) << i;
  }
  EXPECT_EQ(hetero.profile.faults.quarantined_positions, 0u);
  EXPECT_GT(hetero.profile.faults.invalid_results, 0u);
}

// ---------------------------------------------------------------------------
// Re-dispatch: stragglers and faulted accelerator spans drain on the CPU
// ---------------------------------------------------------------------------

TEST(HeteroRedispatch, StragglerDeadlineSendsSpansBackToCpu) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const auto serial = omega::core::scan(dataset, options);

  // A deadline of effectively zero wall seconds: every accelerator span
  // exceeds it at the first poll and re-dispatches its remainder.
  HeteroConfig config = make_config("0:1:1");
  config.straggler_multiplier = 1e-12;
  config.straggler_min_seconds = 0.0;
  options.hetero = &config;
  options.threads = 4;
  const auto hetero = omega::core::scan(dataset, options);

  expect_identical(hetero, serial);
  const auto& stats = hetero.profile.hetero;
  EXPECT_GT(stats.straggler_spans, 0u);
  EXPECT_GT(stats.redispatched_spans, 0u);
  EXPECT_GT(stats.redispatched_positions, 0u);
  EXPECT_EQ(stats.faulted_spans, 0u);
  // The CPU partition absorbed work it was never planned.
  ASSERT_EQ(stats.partitions.size(), 3u);
  EXPECT_EQ(stats.partitions[0].planned_positions, 0u);
  EXPECT_GT(stats.partitions[0].actual_positions, 0u);
}

TEST(HeteroRedispatch, ExhaustedRecoveryFaultsSpanBackToCpuNotQuarantine) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const auto serial = omega::core::scan(dataset, options);

  // Every accelerator launch fails and CPU fallback inside the recovery
  // engine is off, so recovery gives up on the device — the co-scheduler
  // must re-dispatch the span to the CPU partition instead of quarantining.
  FaultPlan plan;
  plan.mode = FaultMode::KernelLaunch;
  plan.rate = 1.0;
  plan.seed = 11;
  options.recovery.fallback_to_cpu = false;
  options.recovery.max_retries = 1;
  HeteroConfig config = make_config("0:1:1", plan);
  options.hetero = &config;
  options.threads = 4;
  const auto hetero = omega::core::scan(dataset, options);

  expect_identical(hetero, serial);
  const auto& stats = hetero.profile.hetero;
  EXPECT_GT(stats.faulted_spans, 0u);
  EXPECT_GT(stats.redispatched_positions, 0u);
  EXPECT_EQ(hetero.profile.faults.quarantined_positions, 0u);
  EXPECT_GT(hetero.profile.faults.errors_caught, 0u);
}

// ---------------------------------------------------------------------------
// Checkpoint resume interoperability: cpu <-> hetero both ways
// ---------------------------------------------------------------------------

class CheckpointPath {
 public:
  explicit CheckpointPath(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / decorate(name))
                  .string()) {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }
  ~CheckpointPath() {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  static std::string decorate(const std::string& name) {
    std::string tag;
    if (const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      tag = std::string(info->test_suite_name()) + "_" + info->name() + "_";
    }
    return tag + name;
  }

  std::string path_;
};

/// Interrupt a streaming scan under `first`, resume it under `second`, and
/// expect the stitched result to be bitwise identical to an uninterrupted
/// serial CPU stream. Exercises the canonical "cpu" config hash both ways.
void cross_backend_resume(const HeteroConfig* first, const HeteroConfig* second,
                          const std::string& tag) {
  const auto dataset = hetero_dataset(909);
  auto options = hetero_options();
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 90;

  DatasetChunkReader reference_reader(dataset);
  ScannerOptions reference_options = options;
  const auto reference =
      omega::core::stream_scan(reference_reader, reference_options);

  const CheckpointPath ckpt("hetero_resume_" + tag + ".ckpt");
  stream_options.checkpoint_path = ckpt.str();

  CancelToken token;
  omega::util::ProgressReporter progress(
      [&](const omega::util::ProgressUpdate& update) {
        if (update.chunks_done >= 1) token.request(CancelReason::Api);
      },
      /*interval_seconds=*/0.0);
  ScannerOptions interrupted_options = options;
  interrupted_options.hetero = first;
  if (first != nullptr) interrupted_options.threads = 4;
  interrupted_options.cancel = &token;
  interrupted_options.progress = &progress;
  DatasetChunkReader interrupted_reader(dataset);
  const auto interrupted = omega::core::stream_scan(
      interrupted_reader, interrupted_options, stream_options);
  ASSERT_TRUE(interrupted.profile.runtime.partial);
  ASSERT_GT(interrupted.profile.runtime.checkpoints_written, 0u);

  StreamScanOptions resume_options = stream_options;
  resume_options.resume = true;
  ScannerOptions resumed_options = options;
  resumed_options.hetero = second;
  if (second != nullptr) resumed_options.threads = 4;
  DatasetChunkReader resumed_reader(dataset);
  const auto resumed = omega::core::stream_scan(resumed_reader, resumed_options,
                                                resume_options);
  EXPECT_EQ(resumed.profile.runtime.resume_validations, 1u);
  EXPECT_GT(resumed.profile.runtime.chunks_resumed, 0u);
  EXPECT_FALSE(resumed.profile.runtime.partial);
  expect_identical(resumed, reference);
}

TEST(HeteroResume, CpuCheckpointResumesUnderHetero) {
  const HeteroConfig config = make_config("auto");
  cross_backend_resume(nullptr, &config, "cpu_to_hetero");
}

TEST(HeteroResume, HeteroCheckpointResumesUnderCpu) {
  const HeteroConfig config = make_config("auto");
  cross_backend_resume(&config, nullptr, "hetero_to_cpu");
}

TEST(HeteroResume, HeteroCheckpointResumesUnderHetero) {
  // Different split on resume: the split is excluded from the config hash,
  // like the thread count, so this must validate and stitch bitwise too.
  const HeteroConfig first = make_config("auto");
  const HeteroConfig second = make_config("1:1:1");
  cross_backend_resume(&first, &second, "hetero_to_hetero");
}

TEST(HeteroResume, HeteroStatsAccumulateAcrossResume) {
  const auto dataset = hetero_dataset(911);
  auto options = hetero_options();
  const HeteroConfig config = make_config("auto");
  options.hetero = &config;
  options.threads = 4;
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 90;
  const CheckpointPath ckpt("hetero_stats_accumulate.ckpt");
  stream_options.checkpoint_path = ckpt.str();

  CancelToken token;
  omega::util::ProgressReporter progress(
      [&](const omega::util::ProgressUpdate& update) {
        if (update.chunks_done >= 1) token.request(CancelReason::Api);
      },
      0.0);
  ScannerOptions interrupted_options = options;
  interrupted_options.cancel = &token;
  interrupted_options.progress = &progress;
  DatasetChunkReader interrupted_reader(dataset);
  const auto interrupted = omega::core::stream_scan(
      interrupted_reader, interrupted_options, stream_options);
  ASSERT_TRUE(interrupted.profile.runtime.partial);
  const std::uint64_t plans_before = interrupted.profile.hetero.plans;
  ASSERT_GT(plans_before, 0u);

  StreamScanOptions resume_options = stream_options;
  resume_options.resume = true;
  DatasetChunkReader resumed_reader(dataset);
  const auto resumed =
      omega::core::stream_scan(resumed_reader, options, resume_options);
  // The checkpointed plans (first run) plus the resumed run's own plans.
  EXPECT_GT(resumed.profile.hetero.plans, 0u);
  EXPECT_GE(resumed.profile.hetero.plans, plans_before);
  EXPECT_TRUE(resumed.profile.hetero.enabled);
  std::uint64_t actual = 0;
  for (const auto& partition : resumed.profile.hetero.partitions) {
    actual += partition.actual_positions;
  }
  EXPECT_EQ(actual, resumed.profile.positions_scanned);
}

// ---------------------------------------------------------------------------
// Schema "hetero" metrics block (v10, partition rates since v11)
// ---------------------------------------------------------------------------

TEST(HeteroMetrics, SchemaBlockCarriesPartitionTable) {
  const auto dataset = hetero_dataset();
  auto options = hetero_options();
  const HeteroConfig config = make_config("3:2:1");
  options.hetero = &config;
  options.threads = 4;
  const auto result = omega::core::scan(dataset, options);

  const auto doc =
      omega::core::metrics::scan_metrics("hetero-metrics", result.profile);
  const auto parsed = omega::core::metrics::JsonValue::parse(doc.dump());
  EXPECT_EQ(parsed.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& hetero = parsed.at("hetero");
  EXPECT_TRUE(hetero.at("enabled").as_bool());
  EXPECT_EQ(hetero.at("split").as_string(), "3:2:1");
  EXPECT_EQ(hetero.at("plans").as_uint(), 1u);
  const auto& partitions = hetero.at("partitions").items();
  ASSERT_EQ(partitions.size(), 3u);
  EXPECT_EQ(partitions[0].at("backend").as_string(), "cpu");
  double weight_sum = 0.0;
  std::uint64_t actual = 0;
  for (const auto& partition : partitions) {
    weight_sum += partition.at("weight").as_double();
    actual += partition.at("actual_positions").as_uint();
    EXPECT_GE(partition.at("measured_seconds").as_double(), 0.0);
    // v11: one rate observation per partition per plan run.
    EXPECT_EQ(partition.at("rate_observations").as_uint(), 1u);
    EXPECT_GE(partition.at("measured_rate_per_s").as_double(), 0.0);
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
  EXPECT_EQ(actual, result.profile.positions_scanned);
}

TEST(HeteroMetrics, CpuScanReportsDisabledBlock) {
  const auto dataset = hetero_dataset();
  const auto result = omega::core::scan(dataset, hetero_options());
  const auto doc =
      omega::core::metrics::scan_metrics("cpu-metrics", result.profile);
  EXPECT_FALSE(doc.at("hetero").at("enabled").as_bool());
  EXPECT_TRUE(doc.at("hetero").at("partitions").items().empty());
}

// ---------------------------------------------------------------------------
// Detector wiring
// ---------------------------------------------------------------------------

TEST(HeteroDetector, BackendHeteroMatchesBackendCpu) {
  const auto dataset = hetero_dataset();
  omega::sweep::DetectorOptions options;
  options.config = hetero_options().config;
  const auto cpu = omega::sweep::detect_sweeps(dataset, options);

  options.backend = omega::sweep::Backend::Hetero;
  options.threads = 4;
  options.hetero_split = "1:1:1";
  const auto hetero = omega::sweep::detect_sweeps(dataset, options);

  EXPECT_EQ(hetero.backend_name, "hetero");
  ASSERT_EQ(hetero.candidates.size(), cpu.candidates.size());
  for (std::size_t i = 0; i < cpu.candidates.size(); ++i) {
    EXPECT_EQ(hetero.candidates[i].position_bp, cpu.candidates[i].position_bp);
    EXPECT_EQ(std::memcmp(&hetero.candidates[i].omega, &cpu.candidates[i].omega,
                          sizeof(double)),
              0);
  }
  EXPECT_TRUE(hetero.profile.hetero.enabled);
}

// ---------------------------------------------------------------------------
// Dispatch accounting regression: empty positions still charge pack cost
// ---------------------------------------------------------------------------

/// A valid position that packs to zero combinations (no admissible left or
/// right borders) without touching the DP matrix — the early-return path
/// that used to leak the GPU dispatch timer.
GridPosition empty_pack_position() {
  GridPosition p;
  p.position_bp = 1;
  p.valid = true;
  p.lo = 1;
  p.hi = 1;
  p.c = 1;
  p.a_max = 0;  // num_left  = a_max - lo + 1 = 0
  p.b_min = 2;  // num_right = hi - b_min + 1 = 0
  return p;
}

TEST(DispatchAccounting, GpuChargesDispatchForEmptyPositions) {
  omega::par::ThreadPool pool(1);
  omega::hw::gpu::GpuOmegaBackend backend(omega::hw::tesla_k80(), pool);
  const DpMatrix m;
  const GridPosition position = empty_pack_position();
  for (int i = 0; i < 5'000; ++i) {
    const auto result = backend.max_omega(m, position);
    EXPECT_EQ(result.evaluated, 0u);
  }
  EXPECT_GT(backend.accounting().dispatch_seconds, 0.0);

  omega::core::ScanProfile profile;
  backend.contribute(profile);
  EXPECT_GT(profile.stages.dispatch_seconds, 0.0);
}

TEST(DispatchAccounting, FpgaChargesDispatchForEmptyPositions) {
  omega::hw::fpga::FpgaOmegaBackend backend(omega::hw::alveo_u200());
  const DpMatrix m;
  const GridPosition position = empty_pack_position();
  for (int i = 0; i < 5'000; ++i) {
    const auto result = backend.max_omega(m, position);
    EXPECT_EQ(result.evaluated, 0u);
  }
  EXPECT_GT(backend.accounting().dispatch_seconds, 0.0);

  omega::core::ScanProfile profile;
  backend.contribute(profile);
  EXPECT_GT(profile.stages.dispatch_seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Workload covered-range mirror vs DpMatrix::extend fetch counters
// ---------------------------------------------------------------------------

/// Replays the scanner's matrix sequence over [begin, end) with a fresh
/// matrix, returning the exact DpMatrix fetch count. The workload mirror
/// must predict it as r2_without_reuse for the first valid position and
/// r2_with_reuse for every later one — the identity hetero partitions (and
/// the parallel span engine) rely on when they restart matrices mid-grid.
std::uint64_t replay_partition(const omega::core::ScanWorkload& workload,
                               const omega::ld::LdEngine& engine,
                               std::size_t begin, std::size_t end) {
  DpMatrix m;
  bool live = false;
  std::uint64_t previous = 0;
  std::uint64_t expected = 0;
  for (std::size_t g = begin; g < end; ++g) {
    const auto& item = workload.positions[g];
    if (!item.geometry.valid) continue;
    if (!live) {
      m.reset(item.geometry.lo);
      live = true;
      expected = item.r2_without_reuse;
    } else {
      m.relocate(item.geometry.lo);
      expected = item.r2_with_reuse;
    }
    m.extend(item.geometry.hi + 1, engine);
    EXPECT_EQ(m.r2_fetches() - previous, expected)
        << "position " << g << " in partition [" << begin << ", " << end
        << ")";
    previous = m.r2_fetches();
  }
  return m.r2_fetches();
}

TEST(WorkloadCrossCheck, PartitionRestartsMatchDpMatrixExactly) {
  for (const std::uint64_t seed : {51u, 52u, 53u}) {
    const auto dataset = hetero_dataset(seed, 240);
    OmegaConfig config = hetero_options().config;
    const auto workload = omega::core::analyze_workload(dataset, config);
    const omega::ld::SnpMatrix snps(dataset);
    const omega::ld::PopcountLd engine(snps);

    const std::size_t n = workload.positions.size();
    // Full-grid serial replay plus the hetero-style contiguous partitions
    // (each restarting a fresh matrix, like an accelerator segment).
    (void)replay_partition(workload, engine, 0, n);
    (void)replay_partition(workload, engine, 0, n / 3);
    (void)replay_partition(workload, engine, n / 3, 2 * n / 3);
    (void)replay_partition(workload, engine, 2 * n / 3, n);
  }
}

TEST(WorkloadCrossCheck, SeamCarryoverKeepsSerialReuseAccounting) {
  const auto dataset = hetero_dataset(54, 240);
  OmegaConfig config = hetero_options().config;
  const auto workload = omega::core::analyze_workload(dataset, config);
  const omega::ld::SnpMatrix snps(dataset);
  const omega::ld::PopcountLd engine(snps);

  // One matrix carried across arbitrary chunk boundaries (the streaming
  // seam): the boundary must not change any per-position fetch count, so
  // the total equals the serial with-reuse mirror.
  const std::size_t n = workload.positions.size();
  DpMatrix m;
  bool live = false;
  std::uint64_t total = 0;
  for (const std::size_t boundary : {n / 4, n / 2, (3 * n) / 4, n}) {
    static std::size_t cursor = 0;
    for (; cursor < boundary; ++cursor) {
      const auto& item = workload.positions[cursor];
      if (!item.geometry.valid) continue;
      if (!live) {
        m.reset(item.geometry.lo);
        live = true;
      } else {
        m.relocate(item.geometry.lo);
      }
      m.extend(item.geometry.hi + 1, engine);
    }
    total = m.r2_fetches();
  }
  EXPECT_EQ(total, workload.total_r2_with_reuse);

  // The serial scanner observes the same mirror end to end.
  ScannerOptions options;
  options.config = config;
  const auto result = omega::core::scan(dataset, options);
  EXPECT_EQ(result.profile.r2_fetched, workload.total_r2_with_reuse);
}

}  // namespace
