// Tests for the FPGA multi-instance host scheduler: list-scheduling
// behaviour, bandwidth-shared stalls, and resource-bounded instance counts.

#include <gtest/gtest.h>

#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/fpga/resource_model.h"
#include "hw/fpga/scheduler.h"
#include "sim/dataset_factory.h"

namespace {

omega::core::ScanWorkload bench_workload(std::size_t grid = 64) {
  const auto dataset = omega::sim::make_dataset({.snps = 2'000,
                                                 .samples = 40,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 60.0,
                                                 .seed = 31});
  omega::core::OmegaConfig config;
  config.grid_size = grid;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 1'200;
  config.min_window = 100;
  return omega::core::analyze_workload(dataset, config);
}

TEST(Scheduler, SingleInstanceMakespanIsTotalWork) {
  const auto workload = bench_workload();
  const auto spec = omega::hw::alveo_u200();
  omega::hw::fpga::SchedulerOptions options;
  options.instances = 1;
  options.ts_from_dram = false;
  const auto result = omega::hw::fpga::schedule_positions(spec, workload, options);
  ASSERT_EQ(result.instance_busy_s.size(), 1u);
  EXPECT_DOUBLE_EQ(result.makespan_s, result.instance_busy_s[0]);
  EXPECT_GT(result.positions, 0u);
  EXPECT_NEAR(result.utilization(), 1.0, 1e-12);
}

TEST(Scheduler, MoreInstancesNeverSlower) {
  const auto workload = bench_workload();
  const auto spec = omega::hw::zcu102();  // small unroll: no bandwidth wall
  double previous = 1e300;
  for (const int instances : {1, 2, 4, 8}) {
    omega::hw::fpga::SchedulerOptions options;
    options.instances = instances;
    options.ts_from_dram = false;
    const auto result =
        omega::hw::fpga::schedule_positions(spec, workload, options);
    EXPECT_LE(result.makespan_s, previous + 1e-12) << instances;
    previous = result.makespan_s;
  }
}

TEST(Scheduler, NearLinearSpeedupWhenComputeBound) {
  const auto workload = bench_workload(128);
  const auto spec = omega::hw::zcu102();
  omega::hw::fpga::SchedulerOptions one, four;
  one.instances = 1;
  one.ts_from_dram = false;
  four.instances = 4;
  four.ts_from_dram = false;
  const auto t1 = omega::hw::fpga::schedule_positions(spec, workload, one);
  const auto t4 = omega::hw::fpga::schedule_positions(spec, workload, four);
  EXPECT_GT(t1.makespan_s / t4.makespan_s, 3.2);  // LPT on 128 positions
}

TEST(Scheduler, SharedBandwidthThrottlesScaling) {
  const auto workload = bench_workload();
  const auto spec = omega::hw::alveo_u200();  // 32 GB/s demand vs 19 GB/s
  omega::hw::fpga::SchedulerOptions one, four;
  one.instances = 1;
  four.instances = 4;
  const auto t1 = omega::hw::fpga::schedule_positions(spec, workload, one);
  const auto t4 = omega::hw::fpga::schedule_positions(spec, workload, four);
  // One instance is already memory-throttled; four share the same bus.
  EXPECT_NEAR(t1.shared_stall_factor, 32.0 / 19.0, 1e-9);
  EXPECT_NEAR(t4.shared_stall_factor, 4.0 * 32.0 / 19.0, 1e-9);
  // Speedup collapses to ~1: the Bozikas et al. observation that transfers,
  // not logic, bound multi-accelerator LD/omega systems.
  EXPECT_LT(t1.makespan_s / t4.makespan_s, 1.3);
}

TEST(Scheduler, LongestFirstBeatsGenomeOrder) {
  const auto workload = bench_workload(33);  // odd count: imbalance visible
  const auto spec = omega::hw::zcu102();
  omega::hw::fpga::SchedulerOptions lpt, genome_order;
  lpt.instances = 4;
  lpt.ts_from_dram = false;
  genome_order = lpt;
  genome_order.longest_first = false;
  const auto a = omega::hw::fpga::schedule_positions(spec, workload, lpt);
  const auto b =
      omega::hw::fpga::schedule_positions(spec, workload, genome_order);
  EXPECT_LE(a.makespan_s, b.makespan_s + 1e-12);
}

TEST(Scheduler, RejectsZeroInstances) {
  const auto workload = bench_workload(8);
  omega::hw::fpga::SchedulerOptions options;
  options.instances = 0;
  EXPECT_THROW(omega::hw::fpga::schedule_positions(omega::hw::zcu102(),
                                                   workload, options),
               std::invalid_argument);
}

TEST(Scheduler, MaxInstancesRespectsResources) {
  const auto zcu = omega::hw::zcu102();
  const int fits = omega::hw::fpga::max_instances(zcu);
  EXPECT_GE(fits, 1);
  // One more instance than reported must violate some resource budget.
  const auto rows = omega::hw::fpga::utilization_at(
      zcu, zcu.unroll_factor * (fits + 1));
  bool violates = false;
  for (const auto& row : rows) {
    if (row.used > 0.8 * row.available) violates = true;
  }
  EXPECT_TRUE(violates);
}

}  // namespace
