// Hardware-counter profiling, measured-rate estimation, and the crash
// flight recorder: the perf_event_open wrapper's graceful degradation when
// the kernel refuses counters (stubbed syscall returning -EACCES), the
// schema v11 "perf" block derivation and its scopes==histogram-count
// reconciliation against the stage timers, the RateEstimator EWMA math and
// its span-engine / hetero wiring, and the flight recorder's dump
// round-trip under manual, fault-exhaustion, and in-process SIGTERM
// triggers.

#include <gtest/gtest.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/metrics_json.h"
#include "core/rate_estimator.h"
#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/gpu/gpu_backend.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/flight_recorder.h"
#include "util/perf_counters.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

namespace perf = omega::util::perf;
namespace flight = omega::util::flight;
using omega::core::RateEstimator;
using omega::core::metrics::JsonValue;

// ---------------------------------------------------------------------------
// Fixtures / helpers
// ---------------------------------------------------------------------------

long refuse_open(std::uint32_t, std::uint64_t, int) { return -EACCES; }

/// Forces the clock-only fallback deterministically (the real syscall may or
/// may not be permitted in the test environment) and restores the real
/// syscall + disabled state afterwards.
class ForcedFallbackPerf : public ::testing::Test {
 protected:
  void SetUp() override {
    perf::set_open_fn_for_testing(&refuse_open);
    perf::reset_thread_for_testing();
    perf::enable();
  }
  void TearDown() override {
    perf::disable();
    perf::set_open_fn_for_testing(nullptr);
    perf::reset_thread_for_testing();
  }
};

omega::io::Dataset perf_dataset(std::uint64_t seed = 4242) {
  return omega::sim::make_dataset({.snps = 300,
                                   .samples = 24,
                                   .locus_length_bp = 300'000,
                                   .rho = 40.0,
                                   .seed = seed});
}

omega::core::ScannerOptions perf_options() {
  omega::core::ScannerOptions options;
  options.config.grid_size = 40;
  options.config.window_unit = omega::core::WindowUnit::Snps;
  options.config.max_window = 240;
  options.config.min_window = 30;
  return options;
}

std::uint64_t histogram_count(
    const omega::util::telemetry::RegistrySnapshot& snapshot,
    const std::string& name) {
  for (const auto& [hist_name, hist] : snapshot.histograms) {
    if (hist_name == name) return hist.count;
  }
  return 0;
}

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

JsonValue parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return JsonValue::parse(text);
}

// ---------------------------------------------------------------------------
// Counter plumbing: disabled cost, forced fallback, source reporting
// ---------------------------------------------------------------------------

TEST(PerfCounters, DisabledScopeRecordsNothing) {
  ASSERT_FALSE(perf::enabled());
  EXPECT_STREQ(perf::source(), "off");
  const auto before = omega::util::telemetry::snapshot();
  {
    static perf::StageCounters& counters = perf::stage("test.disabled_stage");
    const perf::StageScope scope(counters);
  }
  const auto delta = omega::util::telemetry::snapshot().delta_since(before);
  for (const auto& [name, value] : delta.counters) {
    if (name.rfind("perf.test.disabled_stage", 0) == 0) {
      EXPECT_EQ(value, 0u) << name;
    }
  }
  const perf::Sample sample = perf::read_thread_sample();
  EXPECT_FALSE(sample.hardware);
  EXPECT_EQ(sample.task_clock_ns, 0u);
}

TEST_F(ForcedFallbackPerf, RefusedOpenDegradesToClockFallback) {
  ASSERT_TRUE(perf::enabled());
  // The stub refused the group: fallback, not an error.
  EXPECT_STREQ(perf::source(), "fallback");

  const auto before = omega::util::telemetry::snapshot();
  volatile double sink = 0.0;
  {
    static perf::StageCounters& counters = perf::stage("test.fallback_stage");
    const perf::StageScope scope(counters);
    for (int i = 0; i < 2'000'000; ++i) sink = sink + 1.0;
  }
  const auto delta = omega::util::telemetry::snapshot().delta_since(before);

  std::uint64_t scopes = 0, cycles = 0, clock_ns = 0;
  for (const auto& [name, value] : delta.counters) {
    if (name == "perf.test.fallback_stage.scopes") scopes = value;
    if (name == "perf.test.fallback_stage.cycles") cycles = value;
    if (name == "perf.test.fallback_stage.task_clock_ns") clock_ns = value;
  }
  EXPECT_EQ(scopes, 1u);
  EXPECT_EQ(cycles, 0u);  // no hardware group under the fallback
  EXPECT_GT(clock_ns, 0u);  // but thread CPU time still accrues
}

TEST_F(ForcedFallbackPerf, SampleReportsSoftwareSource) {
  const perf::Sample sample = perf::read_thread_sample();
  EXPECT_FALSE(sample.hardware);
}

// ---------------------------------------------------------------------------
// Scan integration: the v11 "perf" block and its histogram reconciliation
// ---------------------------------------------------------------------------

TEST_F(ForcedFallbackPerf, ScanStampsPerfBlockAndReconcilesWithStageTimers) {
  const auto dataset = perf_dataset();
  const auto result = omega::core::scan(dataset, perf_options());
  const auto& perf_stats = result.profile.perf;

  ASSERT_TRUE(perf_stats.enabled);
  EXPECT_EQ(perf_stats.source, "fallback");
  ASSERT_FALSE(perf_stats.stages.empty());

  // Every instrumented stage pairs a StageScope with the stage's existing
  // seconds histogram inside the same block, so the scope count must equal
  // the histogram count in the same scan-attributed telemetry delta.
  const std::vector<std::pair<std::string, std::string>> reconciled = {
      {"scan.reset", "scan.reset_seconds"},
      {"scan.relocate", "scan.relocate_seconds"},
      {"scan.extend", "scan.extend_seconds"},
      {"ld.pack", "ld.pack_seconds"},
      {"ld.kernel", "ld.kernel_seconds"},
  };
  for (const auto& [stage_name, hist_name] : reconciled) {
    const std::uint64_t count =
        histogram_count(result.profile.telemetry, hist_name);
    const auto* stage = perf_stats.find(stage_name);
    if (count == 0) continue;  // stage never ran in this configuration
    ASSERT_NE(stage, nullptr) << stage_name;
    EXPECT_EQ(stage->scopes, count) << stage_name;
    EXPECT_GT(stage->task_clock_seconds, 0.0) << stage_name;
    EXPECT_EQ(stage->cycles, 0u) << stage_name;  // fallback: no hardware
  }
  // The omega search has no seconds histogram (its time lands in
  // stages.omega_search_seconds directly); its scope count is simply the
  // number of searches — one per scanned position here.
  const auto* search = perf_stats.find("scan.omega_search");
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->scopes, result.profile.positions_scanned);

  // Stages are name-sorted for stable JSON output.
  for (std::size_t i = 1; i < perf_stats.stages.size(); ++i) {
    EXPECT_LT(perf_stats.stages[i - 1].stage, perf_stats.stages[i].stage);
  }
}

TEST_F(ForcedFallbackPerf, MetricsDocumentCarriesPerfBlock) {
  const auto dataset = perf_dataset();
  const auto result = omega::core::scan(dataset, perf_options());
  const auto doc =
      omega::core::metrics::scan_metrics("perf-metrics", result.profile);
  const auto parsed = JsonValue::parse(doc.dump());

  EXPECT_EQ(parsed.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& perf_block = parsed.at("perf");
  EXPECT_TRUE(perf_block.at("enabled").as_bool());
  EXPECT_EQ(perf_block.at("source").as_string(), "fallback");
  const auto& stages = perf_block.at("stages").items();
  ASSERT_FALSE(stages.empty());
  for (const auto& stage : stages) {
    EXPECT_GT(stage.at("scopes").as_uint(), 0u);
    EXPECT_GE(stage.at("task_clock_seconds").as_double(), 0.0);
    // Derived ratios are present (zero under the fallback's zero counts).
    EXPECT_EQ(stage.at("ipc").as_double(), 0.0);
    EXPECT_EQ(stage.at("cache_mpki").as_double(), 0.0);
  }
}

TEST(PerfCounters, DisabledScanLeavesPerfBlockEmpty) {
  ASSERT_FALSE(perf::enabled());
  const auto dataset = perf_dataset();
  const auto result = omega::core::scan(dataset, perf_options());
  EXPECT_FALSE(result.profile.perf.enabled);
  EXPECT_TRUE(result.profile.perf.stages.empty());
  const auto doc =
      omega::core::metrics::scan_metrics("perf-off", result.profile);
  EXPECT_FALSE(doc.at("perf").at("enabled").as_bool());
  EXPECT_TRUE(doc.at("perf").at("stages").items().empty());
}

// ---------------------------------------------------------------------------
// RateEstimator: EWMA math and scheduler wiring
// ---------------------------------------------------------------------------

TEST(RateEstimator, FirstObservationSeedsThenEwmaBlends) {
  RateEstimator rate;  // alpha = 0.3
  EXPECT_EQ(rate.rate_per_s(), 0.0);
  EXPECT_EQ(rate.observations(), 0u);
  rate.observe(100, 1.0);
  EXPECT_DOUBLE_EQ(rate.rate_per_s(), 100.0);
  rate.observe(50, 1.0);
  EXPECT_DOUBLE_EQ(rate.rate_per_s(), 0.3 * 50.0 + 0.7 * 100.0);
  EXPECT_EQ(rate.observations(), 2u);
}

TEST(RateEstimator, IgnoresObservationsWithoutRateSignal) {
  RateEstimator rate;
  rate.observe(0, 1.0);      // no positions
  rate.observe(100, 0.0);    // no elapsed time
  rate.observe(100, -1.0);   // clock went backwards
  EXPECT_EQ(rate.observations(), 0u);
  EXPECT_EQ(rate.rate_per_s(), 0.0);
  rate.observe(10, 2.0);
  EXPECT_DOUBLE_EQ(rate.rate_per_s(), 5.0);
  rate.reset();
  EXPECT_EQ(rate.observations(), 0u);
  EXPECT_EQ(rate.rate_per_s(), 0.0);
}

TEST(RateEstimator, SpanEngineWorkersExposeRateGauges) {
  const auto dataset = perf_dataset(5151);
  auto options = perf_options();
  options.threads = 2;
  (void)omega::core::scan(dataset, options);
  const auto snapshot = omega::util::telemetry::snapshot();
  bool found = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind("sched.worker", 0) == 0 &&
        name.find(".rate_per_s") != std::string::npos && value > 0.0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no span-engine worker published a measured rate";
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

TEST(FlightRecorder, ManualDumpRoundTrips) {
  const std::string path = temp_path("omega_flight_manual.json");
  std::filesystem::remove(path);
  omega::util::telemetry::counter("flight.test_marker").add(7);

  flight::arm({.path = path, .max_events = 64});
  ASSERT_TRUE(flight::armed());
  EXPECT_TRUE(flight::dump("unit-test"));
  flight::disarm();
  EXPECT_FALSE(flight::armed());

  const JsonValue doc = parse_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), "omega.flight");
  EXPECT_EQ(doc.at("schema_version").as_int(), 1);
  EXPECT_EQ(doc.at("reason").as_string(), "unit-test");
  EXPECT_EQ(doc.at("fault_exhaustions").as_uint(), 0u);
  // Structural blocks all present and parseable.
  EXPECT_TRUE(doc.at("trace").at("events").is_array());
  EXPECT_TRUE(doc.at("perf").at("stages").is_object());
  EXPECT_GE(doc.at("telemetry").at("counters").at("flight.test_marker")
                .as_uint(),
            7u);
  // Atomic write: no temp file left behind.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(FlightRecorder, DisarmedDumpRefusesQuietly) {
  ASSERT_FALSE(flight::armed());
  EXPECT_FALSE(flight::dump("nobody-listening"));
  flight::note_fault_exhausted();  // must be a no-op, not a crash
}

TEST(FlightRecorder, FaultExhaustionDumpsOnceWithScanState) {
  const std::string path = temp_path("omega_flight_exhaustion.json");
  std::filesystem::remove(path);

  // Every accelerator call fails: retries exhaust and every position
  // quarantines, so the scan driver's note_fault_exhausted() must fire.
  omega::util::fault::FaultPlan plan;
  plan.mode = omega::util::fault::FaultMode::KernelLaunch;
  plan.rate = 1.0;
  plan.seed = 99;
  omega::par::ThreadPool pool(2);
  const auto spec = omega::hw::tesla_k80();

  flight::arm({.path = path});
  const std::uint64_t dumps_before = flight::dumps_written();
  const auto result =
      omega::core::scan(perf_dataset(), perf_options(), [&] {
        omega::hw::gpu::GpuBackendOptions backend_options;
        backend_options.fault_plan = plan;
        return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(
            spec, pool, backend_options);
      });
  flight::disarm();

  ASSERT_GT(result.profile.faults.quarantined_positions, 0u);
  // Exactly one dump: the first exhaustion triggers, later ones only count.
  EXPECT_EQ(flight::dumps_written(), dumps_before + 1);
  const JsonValue doc = parse_file(path);
  EXPECT_EQ(doc.at("reason").as_string(), "fault-exhaustion");
  EXPECT_GE(doc.at("fault_exhaustions").as_uint(), 1u);
  std::filesystem::remove(path);
}

TEST(FlightRecorder, SigtermDumpsThenChainsToCancelHandler) {
  // CLI ordering: cancel handlers first, then arm — so the flight handler
  // dumps and chains into the cancel token, same as a real SIGTERM drain.
  ASSERT_TRUE(omega::util::install_cancel_signal_handlers());
  omega::util::process_cancel_token().reset();

  const std::string path = temp_path("omega_flight_sigterm.json");
  std::filesystem::remove(path);
  flight::arm({.path = path});
  const std::uint64_t dumps_before = flight::dumps_written();
  std::raise(SIGTERM);
  flight::disarm();

  EXPECT_EQ(flight::dumps_written(), dumps_before + 1);
  const JsonValue doc = parse_file(path);
  EXPECT_EQ(doc.at("reason").as_string(), "signal:SIGTERM");
  // The chained cancel handler still ran: the process token is cancelled.
  EXPECT_TRUE(omega::util::process_cancel_token().cancelled());
  EXPECT_EQ(omega::util::process_cancel_token().reason(),
            omega::util::CancelReason::Signal);
  omega::util::process_cancel_token().reset();
  std::filesystem::remove(path);
}

TEST(FlightRecorder, RearmReplacesPathAndResetsExhaustionLatch) {
  const std::string first = temp_path("omega_flight_first.json");
  const std::string second = temp_path("omega_flight_second.json");
  std::filesystem::remove(first);
  std::filesystem::remove(second);

  flight::arm({.path = first});
  flight::note_fault_exhausted();  // dumps to `first`
  EXPECT_TRUE(std::filesystem::exists(first));

  flight::arm({.path = second});   // re-arm: new path, latch reset
  flight::note_fault_exhausted();  // first exhaustion since re-arm: dumps
  flight::disarm();
  EXPECT_TRUE(std::filesystem::exists(second));

  std::filesystem::remove(first);
  std::filesystem::remove(second);
}

}  // namespace
