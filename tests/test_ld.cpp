// Tests for the LD substrate: Eq. (1) arithmetic, bit-packing, and agreement
// of all four engines (naive / popcount / BLIS-style GEMM / bit-packed)
// across shapes that stress the blocking edges. PackedLd-specific behaviour
// (panel cache, ISA dispatch, scan-level identity) lives in
// test_ld_packed.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "io/dataset.h"
#include "ld/gemm.h"
#include "ld/ld_engine.h"
#include "ld/packed.h"
#include "ld/r2.h"
#include "ld/snp_matrix.h"
#include "sim/dataset_factory.h"
#include "util/prng.h"

namespace {

using omega::io::Dataset;
using omega::ld::PairCounts;

Dataset random_dataset(std::size_t sites, std::size_t samples,
                       std::uint64_t seed) {
  omega::util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> positions(sites);
  std::vector<std::vector<std::uint8_t>> rows(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    positions[s] = static_cast<std::int64_t>(s + 1) * 10;
    rows[s].resize(samples);
    // Random derived frequency per site to cover the spectrum.
    const double p = 0.05 + 0.9 * rng.uniform();
    for (std::size_t h = 0; h < samples; ++h) {
      rows[s][h] = rng.uniform() < p ? 1 : 0;
    }
  }
  return Dataset(std::move(positions), std::move(rows),
                 static_cast<std::int64_t>(sites + 1) * 10);
}

Dataset random_missing_dataset(std::size_t sites, std::size_t samples,
                               double missing_rate, std::uint64_t seed);

TEST(R2, HandComputedCase) {
  // 4 samples; SNP i = 1100, SNP j = 1010.
  // pi = pj = 0.5, pij = 0.25 -> r2 = (0.25 - 0.25)^2 / (0.25 * 0.25) = 0.
  PairCounts counts{4, 2, 2, 1};
  EXPECT_DOUBLE_EQ(omega::ld::r2_from_counts(counts), 0.0);

  // Perfect correlation: identical SNPs 1100 and 1100.
  PairCounts perfect{4, 2, 2, 2};
  EXPECT_DOUBLE_EQ(omega::ld::r2_from_counts(perfect), 1.0);

  // Perfect anti-correlation: 1100 vs 0011.
  PairCounts anti{4, 2, 2, 0};
  EXPECT_DOUBLE_EQ(omega::ld::r2_from_counts(anti), 1.0);
}

TEST(R2, MonomorphicIsZero) {
  EXPECT_DOUBLE_EQ(omega::ld::r2_from_counts({4, 0, 2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(omega::ld::r2_from_counts({4, 4, 2, 2}), 0.0);
  EXPECT_EQ(omega::ld::r2_from_counts_f({8, 8, 3, 3}), 0.0f);
}

TEST(R2, RangeAndSymmetryProperty) {
  const Dataset d = random_dataset(40, 37, 5);
  for (std::size_t i = 0; i < d.num_sites(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const double value = omega::ld::r2_naive(d, i, j);
      ASSERT_GE(value, 0.0);
      ASSERT_LE(value, 1.0 + 1e-12);
      ASSERT_DOUBLE_EQ(value, omega::ld::r2_naive(d, j, i));
    }
  }
}

TEST(R2, SelfCorrelationIsOne) {
  const Dataset d = random_dataset(10, 25, 6);
  for (std::size_t i = 0; i < d.num_sites(); ++i) {
    EXPECT_NEAR(omega::ld::r2_naive(d, i, i), 1.0, 1e-12);
  }
}

TEST(SnpMatrix, PackingPreservesCounts) {
  const Dataset d = random_dataset(30, 130, 7);  // >2 words per site
  const omega::ld::SnpMatrix snps(d);
  EXPECT_EQ(snps.num_sites(), d.num_sites());
  EXPECT_EQ(snps.num_samples(), d.num_samples());
  EXPECT_EQ(snps.words_per_site(), 3u);
  for (std::size_t s = 0; s < d.num_sites(); ++s) {
    EXPECT_EQ(static_cast<std::size_t>(snps.derived_count(s)),
              d.derived_count(s));
  }
  std::vector<std::uint8_t> unpacked(d.num_samples());
  for (std::size_t s = 0; s < d.num_sites(); ++s) {
    snps.unpack_row(s, unpacked.data());
    EXPECT_EQ(unpacked, d.site(s));
  }
}

TEST(SnpMatrix, PairCountMatchesDirectCount) {
  const Dataset d = random_dataset(20, 70, 8);
  const omega::ld::SnpMatrix snps(d);
  for (std::size_t i = 0; i < d.num_sites(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      std::int32_t direct = 0;
      for (std::size_t h = 0; h < d.num_samples(); ++h) {
        direct += d.allele(i, h) & d.allele(j, h);
      }
      ASSERT_EQ(snps.pair_count(i, j), direct) << i << "," << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Engine agreement sweep: (sites, samples) combinations chosen to hit GEMM
// microkernel edges (non-multiples of MR/NR/KC) and multi-word popcounts.
// ---------------------------------------------------------------------------

class EngineAgreement
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(EngineAgreement, AllEnginesMatchNaive) {
  const auto [sites, samples] = GetParam();
  const Dataset d = random_dataset(sites, samples, sites * 131 + samples);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::NaiveLd naive(d);
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::GemmLd gemm(snps);
  const omega::ld::PackedLd packed(snps);

  std::vector<float> expected(sites * sites), pop(sites * sites),
      gem(sites * sites), pck(sites * sites);
  naive.r2_block(0, sites, 0, sites, expected.data(), sites);
  popcount.r2_block(0, sites, 0, sites, pop.data(), sites);
  gemm.r2_block(0, sites, 0, sites, gem.data(), sites);
  packed.r2_block(0, sites, 0, sites, pck.data(), sites);
  for (std::size_t idx = 0; idx < expected.size(); ++idx) {
    // Naive computes in double then narrows; the engines compute in float —
    // agreement to a couple of ulps. Popcount, GEMM, and the packed engine
    // share the exact same float path and must match bitwise.
    ASSERT_NEAR(pop[idx], expected[idx], 2e-6f) << "popcount idx " << idx;
    ASSERT_EQ(gem[idx], pop[idx]) << "gemm idx " << idx;
    ASSERT_EQ(pck[idx], pop[idx]) << "packed idx " << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineAgreement,
    ::testing::Values(std::make_tuple(8, 8), std::make_tuple(9, 65),
                      std::make_tuple(17, 33), std::make_tuple(31, 128),
                      std::make_tuple(64, 63), std::make_tuple(70, 200),
                      std::make_tuple(13, 1027)));

TEST(Gemm, RectangularAndOffsetBlocks) {
  const Dataset d = random_dataset(50, 90, 17);
  const omega::ld::SnpMatrix snps(d);
  std::vector<std::int32_t> expected(12 * 20), actual(12 * 20);
  omega::ld::pair_count_block_popcount(snps, 5, 17, 20, 40, expected.data(), 20);
  omega::ld::pair_count_block_gemm(snps, 5, 17, 20, 40, actual.data(), 20);
  EXPECT_EQ(expected, actual);
}

TEST(Gemm, SmallBlockingParametersStillCorrect) {
  const Dataset d = random_dataset(40, 150, 19);
  const omega::ld::SnpMatrix snps(d);
  omega::ld::GemmBlocking blocking;
  blocking.mc = 16;
  blocking.nc = 24;
  blocking.kc = 32;  // force many KC passes and edge tiles
  std::vector<std::int32_t> expected(40 * 40), actual(40 * 40);
  omega::ld::pair_count_block_popcount(snps, 0, 40, 0, 40, expected.data(), 40);
  omega::ld::pair_count_block_gemm(snps, 0, 40, 0, 40, actual.data(), 40,
                                   blocking);
  EXPECT_EQ(expected, actual);
}

TEST(Packed, SmallBlockingParametersStillCorrect) {
  // 150 samples = 3 words per row; kc_words = 1 forces depth (pc) boundaries
  // that straddle the sample word count, sites_per_panel = 3 forces many
  // panel blocks, and mc/nc = 8/8 force edge tiles everywhere.
  const Dataset d = random_dataset(41, 150, 53);
  const omega::ld::SnpMatrix snps(d);
  omega::ld::PackedBlocking blocking;
  blocking.mc = 8;
  blocking.nc = 8;
  blocking.kc_words = 1;
  blocking.sites_per_panel = 3;
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::PackedLd packed(snps, blocking);
  std::vector<float> expected(41 * 41), actual(41 * 41);
  popcount.r2_block(0, 41, 0, 41, expected.data(), 41);
  packed.r2_block(0, 41, 0, 41, actual.data(), 41);
  EXPECT_EQ(expected, actual);
}

TEST(Packed, SmallBlockingWithMissingData) {
  const Dataset d = random_missing_dataset(37, 200, 0.2, 59);
  const omega::ld::SnpMatrix snps(d);
  omega::ld::PackedBlocking blocking;
  blocking.mc = 8;
  blocking.nc = 8;
  blocking.kc_words = 2;
  blocking.sites_per_panel = 5;
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::PackedLd packed(snps, blocking);
  std::vector<float> expected(37 * 37), actual(37 * 37);
  popcount.r2_block(0, 37, 0, 37, expected.data(), 37);
  packed.r2_block(0, 37, 0, 37, actual.data(), 37);
  EXPECT_EQ(expected, actual);
}

TEST(Packed, MonomorphicAndDegenerateSites) {
  // All-ancestral, all-derived, singleton, and (n-1)-ton rows: r2 with a
  // monomorphic site is defined as 0 and must not divide by zero anywhere.
  const std::size_t samples = 70;
  std::vector<std::vector<std::uint8_t>> rows;
  rows.push_back(std::vector<std::uint8_t>(samples, 0));  // monomorphic 0
  rows.push_back(std::vector<std::uint8_t>(samples, 1));  // monomorphic 1
  std::vector<std::uint8_t> singleton(samples, 0);
  singleton[3] = 1;
  rows.push_back(singleton);
  std::vector<std::uint8_t> near_fixed(samples, 1);
  near_fixed[samples - 1] = 0;
  rows.push_back(near_fixed);
  Dataset mixed = random_dataset(4, samples, 61);
  for (std::size_t s = 0; s < 4; ++s) rows.push_back(mixed.site(s));
  const std::size_t sites = rows.size();
  std::vector<std::int64_t> positions(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    positions[s] = static_cast<std::int64_t>(s + 1) * 10;
  }
  const Dataset d(std::move(positions), std::move(rows),
                  static_cast<std::int64_t>(sites + 1) * 10);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::PackedLd packed(snps);
  std::vector<float> expected(sites * sites), actual(sites * sites);
  popcount.r2_block(0, sites, 0, sites, expected.data(), sites);
  packed.r2_block(0, sites, 0, sites, actual.data(), sites);
  EXPECT_EQ(expected, actual);
  // Monomorphic rows correlate with nothing, including themselves.
  for (std::size_t j = 0; j < sites; ++j) {
    EXPECT_EQ(actual[0 * sites + j], 0.0f) << j;
    EXPECT_EQ(actual[1 * sites + j], 0.0f) << j;
  }
}

TEST(Gemm, EmptyBlocksAreNoops) {
  const Dataset d = random_dataset(10, 30, 23);
  const omega::ld::SnpMatrix snps(d);
  std::vector<std::int32_t> out(4, -1);
  omega::ld::pair_count_block_gemm(snps, 3, 3, 0, 4, out.data(), 4);
  EXPECT_EQ(out, (std::vector<std::int32_t>{-1, -1, -1, -1}));
}

TEST(LdEngine, SinglePairConvenience) {
  const Dataset d = random_dataset(12, 44, 29);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      ASSERT_NEAR(engine.r2(i, j), omega::ld::r2_naive(d, i, j), 2e-6);
    }
  }
}

// ---------------------------------------------------------------------------
// Missing data: pairwise-complete counting across all engines
// ---------------------------------------------------------------------------

Dataset random_missing_dataset(std::size_t sites, std::size_t samples,
                               double missing_rate, std::uint64_t seed) {
  Dataset base = random_dataset(sites, samples, seed);
  omega::util::Xoshiro256 rng(seed ^ 0xfeed);
  std::vector<std::int64_t> positions(base.positions());
  std::vector<std::vector<std::uint8_t>> rows(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    rows[s] = base.site(s);
    for (auto& allele : rows[s]) {
      if (rng.uniform() < missing_rate) allele = Dataset::kMissing;
    }
  }
  return Dataset(std::move(positions), std::move(rows),
                 base.locus_length_bp());
}

TEST(MissingData, HandComputedPairwiseComplete) {
  // SNP i: 1 0 . 1 ; SNP j: 1 1 0 .
  // Pairwise-complete samples: {0, 1} -> n=2, ni=1, nj=2 (monomorphic j) -> 0.
  const Dataset d({10, 20},
                  {{1, 0, Dataset::kMissing, 1}, {1, 1, 0, Dataset::kMissing}},
                  100);
  EXPECT_DOUBLE_EQ(omega::ld::r2_naive(d, 0, 1), 0.0);

  // SNP i: 1 0 1 0 . ; SNP j: 1 0 1 0 1 -> complete set {0..3}, identical.
  const Dataset e({10, 20},
                  {{1, 0, 1, 0, Dataset::kMissing}, {1, 0, 1, 0, 1}}, 100);
  EXPECT_DOUBLE_EQ(omega::ld::r2_naive(e, 0, 1), 1.0);
}

TEST(MissingData, SnpMatrixCompleteCounts) {
  const Dataset d = random_missing_dataset(25, 90, 0.15, 41);
  const omega::ld::SnpMatrix snps(d);
  EXPECT_TRUE(snps.has_missing());
  for (std::size_t i = 0; i < d.num_sites(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(snps.valid_count(i)), d.valid_count(i));
    EXPECT_EQ(static_cast<std::size_t>(snps.derived_count(i)),
              d.derived_count(i));
    for (std::size_t j = 0; j <= i; ++j) {
      const auto counts = snps.pair_counts_complete(i, j);
      omega::ld::PairCounts direct{0, 0, 0, 0};
      for (std::size_t h = 0; h < d.num_samples(); ++h) {
        const auto a = d.allele(i, h);
        const auto b = d.allele(j, h);
        if (a == Dataset::kMissing || b == Dataset::kMissing) continue;
        ++direct.samples;
        direct.ni += a;
        direct.nj += b;
        direct.nij += static_cast<std::int32_t>(a & b);
      }
      ASSERT_EQ(counts.samples, direct.samples) << i << "," << j;
      ASSERT_EQ(counts.ni, direct.ni) << i << "," << j;
      ASSERT_EQ(counts.nj, direct.nj) << i << "," << j;
      ASSERT_EQ(counts.nij, direct.nij) << i << "," << j;
    }
  }
}

class MissingEngineAgreement : public ::testing::TestWithParam<double> {};

TEST_P(MissingEngineAgreement, AllEnginesAgree) {
  const Dataset d = random_missing_dataset(40, 130, GetParam(), 47);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::NaiveLd naive(d);
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::GemmLd gemm(snps);
  const omega::ld::PackedLd packed(snps);
  std::vector<float> expected(40 * 40), pop(40 * 40), gem(40 * 40),
      pck(40 * 40);
  naive.r2_block(0, 40, 0, 40, expected.data(), 40);
  popcount.r2_block(0, 40, 0, 40, pop.data(), 40);
  gemm.r2_block(0, 40, 0, 40, gem.data(), 40);
  packed.r2_block(0, 40, 0, 40, pck.data(), 40);
  for (std::size_t idx = 0; idx < expected.size(); ++idx) {
    ASSERT_NEAR(pop[idx], expected[idx], 2e-6f) << idx;
    ASSERT_EQ(gem[idx], pop[idx]) << idx;
    ASSERT_EQ(pck[idx], pop[idx]) << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MissingEngineAgreement,
                         ::testing::Values(0.0, 0.02, 0.1, 0.35, 0.8));

TEST(LdEngine, CoalescentDataAgreement) {
  // Real simulator output (skewed frequency spectrum) rather than uniform
  // random sites.
  const auto d = omega::sim::make_dataset(
      {.snps = 60, .samples = 100, .locus_length_bp = 100'000, .rho = 5.0, .seed = 31});
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd popcount(snps);
  const omega::ld::GemmLd gemm(snps);
  const omega::ld::PackedLd packed(snps);
  std::vector<float> a(60 * 60), b(60 * 60), c(60 * 60);
  popcount.r2_block(0, 60, 0, 60, a.data(), 60);
  gemm.r2_block(0, 60, 0, 60, b.data(), 60);
  packed.r2_block(0, 60, 0, 60, c.data(), 60);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

}  // namespace
