// Tests for the quickLD-style LD statistics and region scans: hand cases for
// D/D'/r2, bounds, overlap handling, MAF filtering, tile-size invariance,
// and parallel == serial.

#include <gtest/gtest.h>

#include "io/dataset.h"
#include "ld/ld_stats.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"

namespace {

using omega::ld::LdScanOptions;
using omega::ld::PairCounts;

TEST(LdStatistics, HandComputedCases) {
  // Perfect coupling: haplotypes 11 and 00 only (2 each of 4).
  // pi = pj = 0.5, pij = 0.5 -> D = 0.25, D' = 1, r2 = 1.
  const auto coupled = omega::ld::ld_statistics({4, 2, 2, 2});
  EXPECT_DOUBLE_EQ(coupled.d, 0.25);
  EXPECT_DOUBLE_EQ(coupled.d_prime, 1.0);
  EXPECT_DOUBLE_EQ(coupled.r2, 1.0);

  // Perfect repulsion: 10 and 01 only -> D = -0.25, D' = -1, r2 = 1.
  const auto repulsed = omega::ld::ld_statistics({4, 2, 2, 0});
  EXPECT_DOUBLE_EQ(repulsed.d, -0.25);
  EXPECT_DOUBLE_EQ(repulsed.d_prime, -1.0);
  EXPECT_DOUBLE_EQ(repulsed.r2, 1.0);

  // Linkage equilibrium: pij = pi * pj exactly.
  const auto equilibrium = omega::ld::ld_statistics({8, 4, 4, 2});
  EXPECT_DOUBLE_EQ(equilibrium.d, 0.0);
  EXPECT_DOUBLE_EQ(equilibrium.r2, 0.0);

  // |D'| = 1 with unequal frequencies but r2 < 1 (the classic D' vs r2 gap).
  // 6 samples: pi = 1/6, pj = 3/6, pij = 1/6 (derived-i always with j).
  const auto partial = omega::ld::ld_statistics({6, 1, 3, 1});
  EXPECT_NEAR(partial.d_prime, 1.0, 1e-12);
  EXPECT_LT(partial.r2, 1.0);
  EXPECT_GT(partial.r2, 0.0);
}

TEST(LdStatistics, MonomorphicAndDegenerate) {
  EXPECT_DOUBLE_EQ(omega::ld::ld_statistics({4, 0, 2, 0}).r2, 0.0);
  EXPECT_DOUBLE_EQ(omega::ld::ld_statistics({1, 1, 1, 1}).r2, 0.0);
}

TEST(LdStatistics, BoundsProperty) {
  // All count configurations on 6 samples: statistics stay in bounds.
  for (std::int32_t ni = 0; ni <= 6; ++ni) {
    for (std::int32_t nj = 0; nj <= 6; ++nj) {
      for (std::int32_t nij = std::max(0, ni + nj - 6);
           nij <= std::min(ni, nj); ++nij) {
        const auto stats = omega::ld::ld_statistics({6, ni, nj, nij});
        ASSERT_GE(stats.r2, 0.0);
        ASSERT_LE(stats.r2, 1.0 + 1e-12);
        ASSERT_GE(stats.d_prime, -1.0 - 1e-12);
        ASSERT_LE(stats.d_prime, 1.0 + 1e-12);
      }
    }
  }
}

struct ScanFixture : ::testing::Test {
  void SetUp() override {
    dataset = omega::sim::make_dataset({.snps = 150,
                                        .samples = 60,
                                        .locus_length_bp = 500'000,
                                        .rho = 15.0,
                                        .seed = 61});
    snps = std::make_unique<omega::ld::SnpMatrix>(dataset);
  }
  omega::io::Dataset dataset;
  std::unique_ptr<omega::ld::SnpMatrix> snps;
};

TEST_F(ScanFixture, DisjointRegionsCountEveryPairOnce) {
  LdScanOptions options;
  const auto result = omega::ld::ld_region_scan(*snps, 0, 40, 60, 110, options);
  EXPECT_EQ(result.pairs_evaluated, 40u * 50u);
  EXPECT_GE(result.max_r2, result.mean_r2);
}

TEST_F(ScanFixture, SelfRegionCountsUnorderedPairs) {
  const auto result = omega::ld::ld_region_scan(*snps, 0, 50, 0, 50, {});
  EXPECT_EQ(result.pairs_evaluated, 50u * 49u / 2u);
}

TEST_F(ScanFixture, PartialOverlapDeduplicates) {
  // A = [0, 60), B = [40, 100): overlap [40, 60) pairs counted once.
  const auto result = omega::ld::ld_region_scan(*snps, 0, 60, 40, 100, {});
  // Total admissible: all (a,b) minus self-pairs minus mirrored duplicates.
  // a in [0,40): 60 b's each; a in [40,60): b in [40,60) keeps a<b
  // (190 pairs) + b in [60,100) (40 each).
  const std::uint64_t expected = 40u * 60u + (20u * 19u / 2u) + 20u * 40u;
  EXPECT_EQ(result.pairs_evaluated, expected);
}

TEST_F(ScanFixture, TileSizeDoesNotChangeResults) {
  LdScanOptions small_tiles, big_tiles;
  small_tiles.tile = 7;
  big_tiles.tile = 512;
  const auto a = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, small_tiles);
  const auto b = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, big_tiles);
  EXPECT_EQ(a.pairs_evaluated, b.pairs_evaluated);
  EXPECT_DOUBLE_EQ(a.mean_r2, b.mean_r2);
  EXPECT_DOUBLE_EQ(a.max_r2, b.max_r2);
  EXPECT_EQ(a.high_ld_pairs, b.high_ld_pairs);
  ASSERT_EQ(a.top.size(), b.top.size());
  for (std::size_t i = 0; i < a.top.size(); ++i) {
    EXPECT_EQ(a.top[i].site_a, b.top[i].site_a);
    EXPECT_EQ(a.top[i].site_b, b.top[i].site_b);
  }
}

TEST_F(ScanFixture, ParallelMatchesSerial) {
  omega::par::ThreadPool pool(3);
  LdScanOptions options;
  options.tile = 16;
  const auto serial = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, options);
  const auto parallel =
      omega::ld::ld_region_scan_parallel(pool, *snps, 0, 150, 0, 150, options);
  EXPECT_EQ(serial.pairs_evaluated, parallel.pairs_evaluated);
  EXPECT_NEAR(serial.mean_r2, parallel.mean_r2, 1e-12);
  EXPECT_DOUBLE_EQ(serial.max_r2, parallel.max_r2);
  EXPECT_EQ(serial.high_ld_pairs, parallel.high_ld_pairs);
  ASSERT_EQ(serial.top.size(), parallel.top.size());
  for (std::size_t i = 0; i < serial.top.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial.top[i].stats.r2, parallel.top[i].stats.r2);
  }
}

TEST_F(ScanFixture, TopListIsDescendingAndCorrectSize) {
  LdScanOptions options;
  options.top_pairs = 5;
  options.high_ld_threshold = 0.0;
  const auto result = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, options);
  ASSERT_EQ(result.top.size(), 5u);
  for (std::size_t i = 1; i < result.top.size(); ++i) {
    EXPECT_GE(result.top[i - 1].stats.r2, result.top[i].stats.r2);
  }
  EXPECT_DOUBLE_EQ(result.top.front().stats.r2, result.max_r2);
}

TEST_F(ScanFixture, MafFilterSkipsRareSites) {
  LdScanOptions strict;
  strict.min_maf = 0.2;
  const auto filtered = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, strict);
  const auto unfiltered = omega::ld::ld_region_scan(*snps, 0, 150, 0, 150, {});
  EXPECT_LT(filtered.pairs_evaluated, unfiltered.pairs_evaluated);
  EXPECT_EQ(filtered.pairs_evaluated + filtered.pairs_skipped_maf,
            unfiltered.pairs_evaluated);
}

TEST(LdScan, EmptyRegions) {
  const auto dataset = omega::sim::make_dataset(
      {.snps = 20, .samples = 20, .locus_length_bp = 10'000, .rho = 1.0, .seed = 62});
  const omega::ld::SnpMatrix snps(dataset);
  const auto result = omega::ld::ld_region_scan(snps, 5, 5, 0, 20, {});
  EXPECT_EQ(result.pairs_evaluated, 0u);
  EXPECT_DOUBLE_EQ(result.mean_r2, 0.0);
}

}  // namespace
