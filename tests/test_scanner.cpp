// Integration tests for the scan driver: whole-scan agreement with the
// brute-force oracle, LD-engine interchangeability, relocation on/off
// equivalence, multithreaded == sequential, and profile accounting.

#include <gtest/gtest.h>

#include "core/dp_matrix.h"
#include "core/reference.h"
#include "core/scanner.h"
#include "core/workload.h"
#include "ld/ld_engine.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"

namespace {

using omega::core::OmegaConfig;
using omega::core::ScannerOptions;

omega::io::Dataset scan_dataset(std::uint64_t seed, std::size_t sites = 150) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = 30,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 25.0,
                                   .seed = seed});
}

OmegaConfig small_config() {
  OmegaConfig config;
  config.grid_size = 12;
  config.max_window = 200'000;
  config.min_window = 10'000;
  return config;
}

TEST(Scanner, MatchesBruteForcePerPosition) {
  const auto d = scan_dataset(1, 80);
  ScannerOptions options;
  options.config = small_config();
  const auto result = omega::core::scan(d, options);
  const auto grid = omega::core::build_grid(d, options.config);
  ASSERT_EQ(result.scores.size(), grid.size());
  for (std::size_t g = 0; g < grid.size(); ++g) {
    if (!grid[g].valid) {
      EXPECT_FALSE(result.scores[g].valid);
      continue;
    }
    const auto brute = omega::core::brute_force_position(d, grid[g]);
    ASSERT_TRUE(result.scores[g].valid);
    EXPECT_EQ(result.scores[g].evaluated, brute.evaluated);
    EXPECT_NEAR(result.scores[g].max_omega, brute.max_omega,
                1e-3 * (1.0 + brute.max_omega))
        << "grid " << g;
  }
}

TEST(Scanner, LdEnginesProduceSameScan) {
  const auto d = scan_dataset(2);
  ScannerOptions popcount_options;
  popcount_options.config = small_config();
  popcount_options.ld = omega::core::LdBackendKind::Popcount;
  ScannerOptions gemm_options = popcount_options;
  gemm_options.ld = omega::core::LdBackendKind::Gemm;

  const auto a = omega::core::scan(d, popcount_options);
  const auto b = omega::core::scan(d, gemm_options);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    // Identical float r2 inputs -> identical sums -> identical scores.
    ASSERT_DOUBLE_EQ(a.scores[g].max_omega, b.scores[g].max_omega);
    ASSERT_EQ(a.scores[g].best_a, b.scores[g].best_a);
    ASSERT_EQ(a.scores[g].best_b, b.scores[g].best_b);
  }
}

TEST(Scanner, ReuseToggleDoesNotChangeResults) {
  const auto d = scan_dataset(3);
  ScannerOptions with_reuse;
  with_reuse.config = small_config();
  with_reuse.reuse = true;
  ScannerOptions without_reuse = with_reuse;
  without_reuse.reuse = false;

  const auto a = omega::core::scan(d, with_reuse);
  const auto b = omega::core::scan(d, without_reuse);
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    ASSERT_DOUBLE_EQ(a.scores[g].max_omega, b.scores[g].max_omega);
  }
  // Reuse must fetch strictly fewer r2 values on overlapping grids.
  EXPECT_LT(a.profile.r2_fetched, b.profile.r2_fetched);
}

class ScannerThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScannerThreads, MultithreadedEqualsSequential) {
  const auto d = scan_dataset(4);
  ScannerOptions sequential;
  sequential.config = small_config();
  ScannerOptions threaded = sequential;
  threaded.threads = GetParam();

  const auto a = omega::core::scan(d, sequential);
  const auto b = omega::core::scan(d, threaded);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    ASSERT_DOUBLE_EQ(a.scores[g].max_omega, b.scores[g].max_omega);
    ASSERT_EQ(a.scores[g].best_a, b.scores[g].best_a);
    ASSERT_EQ(a.scores[g].best_b, b.scores[g].best_b);
  }
  EXPECT_EQ(a.profile.omega_evaluations, b.profile.omega_evaluations);
}

INSTANTIATE_TEST_SUITE_P(Threads, ScannerThreads,
                         ::testing::Values(2, 3, 4, 8));

class InnerPositionThreads : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InnerPositionThreads, MatchesSequentialExactly) {
  const auto d = scan_dataset(14);
  ScannerOptions sequential;
  sequential.config = small_config();
  ScannerOptions inner = sequential;
  inner.threads = GetParam();
  inner.mt_strategy = ScannerOptions::MtStrategy::InnerPosition;

  const auto a = omega::core::scan(d, sequential);
  const auto b = omega::core::scan(d, inner);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    ASSERT_DOUBLE_EQ(a.scores[g].max_omega, b.scores[g].max_omega);
    ASSERT_EQ(a.scores[g].best_a, b.scores[g].best_a);
    ASSERT_EQ(a.scores[g].best_b, b.scores[g].best_b);
  }
  EXPECT_EQ(a.profile.omega_evaluations, b.profile.omega_evaluations);
  EXPECT_EQ(a.profile.r2_fetched, b.profile.r2_fetched);
}

INSTANTIATE_TEST_SUITE_P(Threads, InnerPositionThreads,
                         ::testing::Values(2, 3, 5));

TEST(InnerPosition, RejectsNonCpuBackend) {
  const auto d = scan_dataset(15, 60);
  ScannerOptions options;
  options.config = small_config();
  options.threads = 2;
  options.mt_strategy = ScannerOptions::MtStrategy::InnerPosition;
  EXPECT_THROW(
      omega::core::scan(d, options,
                        [] { return std::make_unique<omega::core::CpuOmegaBackend>(); }),
      std::invalid_argument);
}

TEST(ParallelSearch, MatchesSequentialPerPosition) {
  const auto d = scan_dataset(16, 100);
  omega::core::OmegaConfig config = small_config();
  const auto grid = omega::core::build_grid(d, config);
  const omega::ld::SnpMatrix snps(d);
  const omega::ld::PopcountLd engine(snps);
  omega::par::ThreadPool pool(3);
  for (const auto& position : grid) {
    if (!position.valid) continue;
    omega::core::DpMatrix m;
    m.reset(position.lo);
    m.extend(position.hi + 1, engine);
    const auto sequential = omega::core::max_omega_search(m, position);
    const auto parallel =
        omega::core::max_omega_search_parallel(pool, m, position);
    ASSERT_DOUBLE_EQ(sequential.max_omega, parallel.max_omega);
    ASSERT_EQ(sequential.best_a, parallel.best_a);
    ASSERT_EQ(sequential.best_b, parallel.best_b);
    ASSERT_EQ(sequential.evaluated, parallel.evaluated);
  }
}

TEST(Scanner, ProfileCountersAreConsistent) {
  const auto d = scan_dataset(5);
  ScannerOptions options;
  options.config = small_config();
  const auto result = omega::core::scan(d, options);
  const auto workload = omega::core::analyze_workload(d, options.config);
  EXPECT_EQ(result.profile.omega_evaluations, workload.total_combinations);
  EXPECT_EQ(result.profile.r2_fetched, workload.total_r2_with_reuse);
  EXPECT_GE(result.profile.total_seconds,
            0.0);  // stopwatch sanity
  EXPECT_GT(result.profile.omega_throughput(), 0.0);
  EXPECT_GT(result.profile.ld_throughput(), 0.0);
}

TEST(Scanner, BestAndTopHelpers) {
  const auto d = scan_dataset(6);
  ScannerOptions options;
  options.config = small_config();
  const auto result = omega::core::scan(d, options);
  const auto& best = result.best();
  const auto top3 = result.top(3);
  ASSERT_LE(top3.size(), 3u);
  EXPECT_DOUBLE_EQ(top3.front().max_omega, best.max_omega);
  for (std::size_t i = 1; i < top3.size(); ++i) {
    EXPECT_GE(top3[i - 1].max_omega, top3[i].max_omega);
  }
}

// best() and top() must never surface a position the grid builder marked
// invalid, no matter how high its (meaningless) score field is; best() throws
// only when no valid score exists at all.
TEST(Scanner, BestAndTopSkipInvalidScores) {
  omega::core::ScanResult result;
  omega::core::PositionScore invalid_high;
  invalid_high.valid = false;
  invalid_high.max_omega = 1e9;  // garbage from an unevaluated slot
  omega::core::PositionScore valid_low;
  valid_low.valid = true;
  valid_low.max_omega = 1.5;
  valid_low.position_bp = 42;
  omega::core::PositionScore valid_mid;
  valid_mid.valid = true;
  valid_mid.max_omega = 2.5;
  valid_mid.position_bp = 84;
  result.scores = {invalid_high, valid_low, valid_mid, invalid_high};

  EXPECT_DOUBLE_EQ(result.best().max_omega, 2.5);
  EXPECT_EQ(result.best().position_bp, 84);
  const auto top = result.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0].max_omega, 2.5);
  EXPECT_DOUBLE_EQ(top[1].max_omega, 1.5);

  result.scores = {invalid_high, invalid_high};
  EXPECT_THROW((void)result.best(), std::logic_error);
  EXPECT_TRUE(result.top(5).empty());

  result.scores.clear();
  EXPECT_THROW((void)result.best(), std::logic_error);
}

TEST(Scanner, EmptyGridConfigThrows) {
  const auto d = scan_dataset(7, 50);
  ScannerOptions options;
  options.config.grid_size = 0;
  EXPECT_THROW(omega::core::scan(d, options), std::invalid_argument);
}

TEST(Scanner, NaiveEngineAgreesOnTinyScan) {
  const auto d = scan_dataset(8, 40);
  ScannerOptions fast;
  fast.config = small_config();
  fast.config.grid_size = 4;
  ScannerOptions naive = fast;
  naive.ld = omega::core::LdBackendKind::Naive;
  const auto a = omega::core::scan(d, fast);
  const auto b = omega::core::scan(d, naive);
  for (std::size_t g = 0; g < a.scores.size(); ++g) {
    ASSERT_NEAR(a.scores[g].max_omega, b.scores[g].max_omega,
                1e-3 * (1.0 + a.scores[g].max_omega));
  }
}

}  // namespace
