// PackedLd-specific tests: ISA dispatch (scalar vs AVX2 bitwise identity),
// panel-cache behaviour across r2_block / DpMatrix extend-relocate-reset
// patterns and chunk switches, backend-name plumbing, and the headline
// guarantee — whole-scan results are bitwise identical across every
// LdBackendKind, in-memory and streaming.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/dp_matrix.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "io/chunk_reader.h"
#include "io/dataset.h"
#include "ld/ld_engine.h"
#include "ld/packed.h"
#include "ld/snp_matrix.h"
#include "sim/dataset_factory.h"
#include "util/prng.h"

namespace {

using omega::core::LdBackendKind;
using omega::core::OmegaConfig;
using omega::core::ScannerOptions;
using omega::core::StreamScanOptions;
using omega::io::Dataset;
using omega::io::DatasetChunkReader;
using omega::ld::PackedBlocking;
using omega::ld::PackedIsa;
using omega::ld::PackedLd;
using omega::ld::PopcountLd;
using omega::ld::SnpMatrix;

Dataset random_dataset(std::size_t sites, std::size_t samples,
                       std::uint64_t seed, double missing_rate = 0.0) {
  omega::util::Xoshiro256 rng(seed);
  std::vector<std::int64_t> positions(sites);
  std::vector<std::vector<std::uint8_t>> rows(sites);
  for (std::size_t s = 0; s < sites; ++s) {
    positions[s] = static_cast<std::int64_t>(s + 1) * 10;
    rows[s].resize(samples);
    const double p = 0.05 + 0.9 * rng.uniform();
    for (std::size_t h = 0; h < samples; ++h) {
      if (missing_rate > 0.0 && rng.uniform() < missing_rate) {
        rows[s][h] = Dataset::kMissing;
      } else {
        rows[s][h] = rng.uniform() < p ? 1 : 0;
      }
    }
  }
  return Dataset(std::move(positions), std::move(rows),
                 static_cast<std::int64_t>(sites + 1) * 10);
}

/// A coalescent dataset with `missing_rate` of the genotypes knocked out —
/// realistic positions for the scan grid plus the fused packed path.
Dataset scan_dataset(std::uint64_t seed, std::size_t sites,
                     double missing_rate = 0.0) {
  Dataset base = omega::sim::make_dataset({.snps = sites,
                                           .samples = 30,
                                           .locus_length_bp = 1'000'000,
                                           .rho = 25.0,
                                           .seed = seed});
  if (missing_rate <= 0.0) return base;
  omega::util::Xoshiro256 rng(seed ^ 0xfeed);
  std::vector<std::int64_t> positions(base.positions());
  std::vector<std::vector<std::uint8_t>> rows(base.num_sites());
  for (std::size_t s = 0; s < base.num_sites(); ++s) {
    rows[s] = base.site(s);
    for (auto& allele : rows[s]) {
      if (rng.uniform() < missing_rate) allele = Dataset::kMissing;
    }
  }
  return Dataset(std::move(positions), std::move(rows),
                 base.locus_length_bp());
}

OmegaConfig small_config() {
  OmegaConfig config;
  config.grid_size = 12;
  config.max_window = 200'000;
  config.min_window = 10'000;
  return config;
}

void expect_bitwise_equal(const omega::core::ScanResult& expected,
                          const omega::core::ScanResult& actual) {
  ASSERT_EQ(expected.scores.size(), actual.scores.size());
  for (std::size_t g = 0; g < expected.scores.size(); ++g) {
    const auto& e = expected.scores[g];
    const auto& a = actual.scores[g];
    ASSERT_EQ(e.valid, a.valid) << "grid " << g;
    ASSERT_EQ(e.position_bp, a.position_bp) << "grid " << g;
    if (!e.valid) continue;
    ASSERT_EQ(e.max_omega, a.max_omega) << "grid " << g;
    ASSERT_EQ(e.best_a, a.best_a) << "grid " << g;
    ASSERT_EQ(e.best_b, a.best_b) << "grid " << g;
    ASSERT_EQ(e.evaluated, a.evaluated) << "grid " << g;
  }
}

// ------------------------------------------------------------ ISA dispatch --

TEST(PackedIsaDispatch, ScalarMatchesAutoBitwise) {
  for (const double missing : {0.0, 0.15}) {
    const Dataset d = random_dataset(48, 300, 71, missing);
    const SnpMatrix snps(d);
    const PackedLd auto_engine(snps);
    const PackedLd scalar_engine(snps, PackedBlocking{}, PackedIsa::Scalar);
    EXPECT_STREQ(scalar_engine.isa(), "scalar");
    std::vector<float> a(48 * 48), s(48 * 48);
    auto_engine.r2_block(0, 48, 0, 48, a.data(), 48);
    scalar_engine.r2_block(0, 48, 0, 48, s.data(), 48);
    EXPECT_EQ(a, s) << "missing rate " << missing;
  }
}

TEST(PackedIsaDispatch, ForcedAvx2OrThrows) {
  const Dataset d = random_dataset(20, 500, 73, 0.1);
  const SnpMatrix snps(d);
  if (omega::ld::packed_avx2_available()) {
    const PackedLd avx2_engine(snps, PackedBlocking{}, PackedIsa::Avx2);
    EXPECT_STREQ(avx2_engine.isa(), "avx2");
    const PackedLd scalar_engine(snps, PackedBlocking{}, PackedIsa::Scalar);
    std::vector<float> a(20 * 20), s(20 * 20);
    avx2_engine.r2_block(0, 20, 0, 20, a.data(), 20);
    scalar_engine.r2_block(0, 20, 0, 20, s.data(), 20);
    EXPECT_EQ(a, s);
  } else {
    EXPECT_THROW(PackedLd(snps, PackedBlocking{}, PackedIsa::Avx2),
                 std::runtime_error);
  }
}

TEST(PackedIsaDispatch, AutoNameMatchesAvailability) {
  const char* resolved = omega::ld::packed_isa_name(PackedIsa::Auto);
  if (omega::ld::packed_avx2_available()) {
    EXPECT_STREQ(resolved, "avx2");
  } else {
    EXPECT_STREQ(resolved, "scalar");
  }
  EXPECT_STREQ(omega::ld::packed_isa_name(PackedIsa::Scalar), "scalar");
}

TEST(PackedIsaDispatch, DeepSampleDimensionHitsHarleySeal) {
  // > 64 * 64 = 4096 sample bits per row pushes the AVX2 popcount into the
  // Harley-Seal carry-save loop; the scalar oracle must still match bitwise.
  const Dataset d = random_dataset(10, 4500, 79, 0.05);
  const SnpMatrix snps(d);
  const PackedLd auto_engine(snps);
  const PackedLd scalar_engine(snps, PackedBlocking{}, PackedIsa::Scalar);
  std::vector<float> a(10 * 10), s(10 * 10);
  auto_engine.r2_block(0, 10, 0, 10, a.data(), 10);
  scalar_engine.r2_block(0, 10, 0, 10, s.data(), 10);
  EXPECT_EQ(a, s);
}

// -------------------------------------------------------------- panel cache --

TEST(PackedPanelCache, PacksOnceThenHits) {
  const Dataset d = random_dataset(60, 100, 83);
  const SnpMatrix snps(d);
  PackedBlocking blocking;
  blocking.sites_per_panel = 8;  // 60 sites -> 8 panel blocks
  const PackedLd packed(snps, blocking);
  EXPECT_EQ(packed.panel_packs(), 0u);

  std::vector<float> first(60 * 60), second(60 * 60);
  packed.r2_block(0, 60, 0, 60, first.data(), 60);
  const std::uint64_t packs_after_first = packed.panel_packs();
  EXPECT_GT(packs_after_first, 0u);
  EXPECT_LE(packs_after_first, 8u);  // every block packed at most once
  const std::uint64_t hits_after_first = packed.panel_hits();

  packed.r2_block(0, 60, 0, 60, second.data(), 60);
  EXPECT_EQ(packed.panel_packs(), packs_after_first)
      << "second pass must be all cache hits";
  EXPECT_GT(packed.panel_hits(), hits_after_first);
  EXPECT_EQ(first, second);
}

TEST(PackedPanelCache, OverlappingRangesShareBlocks) {
  const Dataset d = random_dataset(64, 90, 89);
  const SnpMatrix snps(d);
  PackedBlocking blocking;
  blocking.sites_per_panel = 16;  // blocks [0,16) [16,32) [32,48) [48,64)
  const PackedLd packed(snps, blocking);

  std::vector<float> out(32 * 32);
  packed.r2_block(0, 16, 0, 16, out.data(), 16);
  EXPECT_EQ(packed.panel_packs(), 1u);
  // [8, 24) overlaps block 0 (hit) and block 1 (miss).
  packed.r2_block(8, 24, 8, 24, out.data(), 16);
  EXPECT_EQ(packed.panel_packs(), 2u);
  EXPECT_GT(packed.panel_hits(), 0u);
}

TEST(PackedPanelCache, ExtendRelocateResetReusesPanels) {
  // The DpMatrix access pattern of an overlapping-grid scan: every extend
  // against the same engine after the first position is cache hits, and the
  // DP cells must match a popcount-driven matrix bitwise (double equality).
  const Dataset d = random_dataset(80, 120, 97);
  const SnpMatrix snps(d);
  PackedBlocking blocking;
  blocking.sites_per_panel = 10;  // 8 blocks
  const PackedLd packed(snps, blocking);
  const PopcountLd popcount(snps);

  omega::core::DpMatrix packed_dp, pop_dp;
  packed_dp.reset(0);
  pop_dp.reset(0);
  packed_dp.extend(30, packed);
  pop_dp.extend(30, popcount);
  packed_dp.relocate(12);
  pop_dp.relocate(12);
  packed_dp.extend(56, packed);
  pop_dp.extend(56, popcount);
  packed_dp.reset(40);
  pop_dp.reset(40);
  packed_dp.extend(80, packed);
  pop_dp.extend(80, popcount);

  ASSERT_EQ(packed_dp.base(), pop_dp.base());
  ASSERT_EQ(packed_dp.end(), pop_dp.end());
  for (std::size_t i = packed_dp.base(); i < packed_dp.end(); ++i) {
    for (std::size_t j = packed_dp.base(); j <= i; ++j) {
      ASSERT_EQ(packed_dp.at(i, j), pop_dp.at(i, j)) << i << "," << j;
    }
  }

  // 80 sites / 10 per block: at most 8 packs no matter how many extends ran.
  EXPECT_LE(packed.panel_packs(), 8u);
  const std::uint64_t packs_settled = packed.panel_packs();
  omega::core::DpMatrix again;
  again.reset(0);
  again.extend(80, packed);
  EXPECT_EQ(packed.panel_packs(), packs_settled)
      << "re-walking the chunk must not repack";
}

TEST(PackedPanelCache, NewEngineStartsCold) {
  // A chunk switch constructs a fresh engine — the cache does not leak
  // across engines (and therefore not across chunks).
  const Dataset d = random_dataset(24, 70, 101);
  const SnpMatrix snps(d);
  PackedBlocking blocking;
  blocking.sites_per_panel = 8;
  const PackedLd first(snps, blocking);
  std::vector<float> out(24 * 24);
  first.r2_block(0, 24, 0, 24, out.data(), 24);
  EXPECT_EQ(first.panel_packs(), 3u);

  const PackedLd second(snps, blocking);
  EXPECT_EQ(second.panel_packs(), 0u);
  second.r2_block(0, 24, 0, 24, out.data(), 24);
  EXPECT_EQ(second.panel_packs(), 3u);
}

// --------------------------------------------------------- backend plumbing --

TEST(LdBackendNames, RoundTripAndResolve) {
  using omega::core::ld_backend_from_name;
  using omega::core::ld_backend_name;
  using omega::core::resolve_ld_backend;
  for (const auto kind :
       {LdBackendKind::Naive, LdBackendKind::Popcount, LdBackendKind::Gemm,
        LdBackendKind::Packed, LdBackendKind::Auto}) {
    EXPECT_EQ(ld_backend_from_name(ld_backend_name(kind)), kind);
  }
  EXPECT_EQ(resolve_ld_backend(LdBackendKind::Auto), LdBackendKind::Packed);
  EXPECT_EQ(resolve_ld_backend(LdBackendKind::Gemm), LdBackendKind::Gemm);
  EXPECT_THROW((void)ld_backend_from_name("simd9000"), std::invalid_argument);
}

// ------------------------------------------------------- whole-scan identity --

class PackedScanIdentity : public ::testing::TestWithParam<double> {};

TEST_P(PackedScanIdentity, AllBackendsBitwise) {
  const Dataset d = scan_dataset(7, 150, GetParam());
  ScannerOptions options;
  options.config = small_config();
  options.ld = LdBackendKind::Popcount;
  const auto reference = omega::core::scan(d, options);

  for (const auto kind :
       {LdBackendKind::Gemm, LdBackendKind::Packed, LdBackendKind::Auto}) {
    ScannerOptions other = options;
    other.ld = kind;
    const auto result = omega::core::scan(d, other);
    expect_bitwise_equal(reference, result);
  }

  // Naive computes r2 in double and narrows — agreement to float precision,
  // not bitwise.
  ScannerOptions naive_options = options;
  naive_options.ld = LdBackendKind::Naive;
  const auto naive = omega::core::scan(d, naive_options);
  ASSERT_EQ(naive.scores.size(), reference.scores.size());
  for (std::size_t g = 0; g < reference.scores.size(); ++g) {
    if (!reference.scores[g].valid) continue;
    EXPECT_NEAR(naive.scores[g].max_omega, reference.scores[g].max_omega,
                1e-3 * (1.0 + reference.scores[g].max_omega))
        << "grid " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(MissingRates, PackedScanIdentity,
                         ::testing::Values(0.0, 0.1));

TEST(PackedScanIdentity, StreamingMatchesInMemory) {
  for (const double missing : {0.0, 0.1}) {
    const Dataset d = scan_dataset(11, 180, missing);
    ScannerOptions options;
    options.config = small_config();
    options.ld = LdBackendKind::Packed;
    const auto reference = omega::core::scan(d, options);

    for (const std::size_t chunk_sites : {1000u, 48u}) {
      DatasetChunkReader reader(d);
      StreamScanOptions stream_options;
      stream_options.chunk_sites = chunk_sites;
      const auto streamed =
          omega::core::stream_scan(reader, options, stream_options);
      expect_bitwise_equal(reference, streamed);
    }
  }
}

TEST(PackedScanIdentity, ProfileStampsResolvedEngine) {
  const Dataset d = scan_dataset(13, 120);
  ScannerOptions options;
  options.config = small_config();
  options.ld = LdBackendKind::Auto;
  const auto result = omega::core::scan(d, options);
  EXPECT_EQ(result.profile.ld_backend, "packed");
  EXPECT_EQ(result.profile.ld.requested, "auto");
  EXPECT_EQ(result.profile.ld.engine, "packed");
  EXPECT_EQ(result.profile.ld.isa,
            omega::ld::packed_isa_name(PackedIsa::Auto));

  // Streaming fills the same block.
  DatasetChunkReader reader(d);
  const auto streamed = omega::core::stream_scan(reader, options);
  EXPECT_EQ(streamed.profile.ld.engine, "packed");
  EXPECT_EQ(streamed.profile.ld.requested, "auto");

  // A non-packed engine leaves the packed-only fields empty.
  ScannerOptions pop_options = options;
  pop_options.ld = LdBackendKind::Popcount;
  const auto pop = omega::core::scan(d, pop_options);
  EXPECT_EQ(pop.profile.ld.engine, "popcount");
  EXPECT_EQ(pop.profile.ld.requested, "popcount");
  EXPECT_TRUE(pop.profile.ld.isa.empty());
}

}  // namespace
