// Tests for the simulated OpenCL-like runtime: functional buffer semantics,
// in-order engine scheduling, wait-list dependencies, overlap accounting,
// and the timeline pipeline's consistency with the closed-form model.

#include <gtest/gtest.h>

#include <numeric>

#include "core/workload.h"
#include "hw/device_specs.h"
#include "hw/gpu/runtime.h"
#include "hw/gpu/timeline_pipeline.h"
#include "hw/gpu/timing_model.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"

namespace {

using omega::hw::gpu::Buffer;
using omega::hw::gpu::CommandQueue;
using omega::hw::gpu::Event;
using omega::hw::gpu::NdRange;
using omega::hw::gpu::WorkItem;

omega::hw::GpuDeviceSpec test_spec() {
  auto spec = omega::hw::tesla_k80();
  // Round numbers for hand-checkable schedules.
  spec.pcie_bandwidth_bps = 1e9;
  spec.pcie_latency_s = 1e-6;
  return spec;
}

TEST(Runtime, BufferRoundTrip) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  Buffer buffer(64);
  std::vector<std::uint8_t> source(64);
  std::iota(source.begin(), source.end(), 0);
  queue.enqueue_write(buffer, source.data(), source.size());
  std::vector<std::uint8_t> sink(64, 0xFF);
  queue.enqueue_read(buffer, sink.data(), sink.size());
  EXPECT_EQ(sink, source);
}

TEST(Runtime, OverflowThrows) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  Buffer buffer(8);
  std::vector<std::uint8_t> big(16, 0);
  EXPECT_THROW(queue.enqueue_write(buffer, big.data(), big.size()),
               std::out_of_range);
  EXPECT_THROW(queue.enqueue_read(buffer, big.data(), big.size()),
               std::out_of_range);
}

TEST(Runtime, TransferTimesFollowLinkModel) {
  omega::par::ThreadPool pool(1);
  const auto spec = test_spec();
  CommandQueue queue(spec, pool);
  Buffer buffer(1'000'000);
  std::vector<std::uint8_t> payload(1'000'000, 1);
  const auto id = queue.enqueue_write(buffer, payload.data(), payload.size());
  const auto& event = queue.event(id);
  EXPECT_DOUBLE_EQ(event.start_s, 0.0);
  EXPECT_DOUBLE_EQ(event.duration(), 1e-6 + 1e6 / 1e9);
}

TEST(Runtime, EnginesSerializeIndependently) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  Buffer a(1'000'000), b(1'000'000);
  std::vector<std::uint8_t> payload(1'000'000, 1);
  // Two writes: second starts when the first ends (same DMA engine).
  const auto w1 = queue.enqueue_write(a, payload.data(), payload.size());
  const auto w2 = queue.enqueue_write(b, payload.data(), payload.size());
  EXPECT_DOUBLE_EQ(queue.event(w2).start_s, queue.event(w1).end_s);
  // An independent kernel starts at 0 (compute engine idle).
  NdRange range;
  range.global_size = 1;
  const auto k = queue.enqueue_kernel("idle", range, [](const WorkItem&) {},
                                      1e-3);
  EXPECT_DOUBLE_EQ(queue.event(k).start_s, 0.0);
}

TEST(Runtime, WaitListsDelayDependents) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  Buffer buffer(1'000'000);
  std::vector<std::uint8_t> payload(1'000'000, 1);
  const auto write = queue.enqueue_write(buffer, payload.data(), payload.size());
  NdRange range;
  range.global_size = 1;
  const auto kernel = queue.enqueue_kernel(
      "dependent", range, [](const WorkItem&) {}, 5e-4, {write});
  EXPECT_DOUBLE_EQ(queue.event(kernel).start_s, queue.event(write).end_s);
  // A read waiting on the kernel starts after it, even though the DMA
  // engine was free earlier.
  std::uint8_t sink = 0;
  const auto read = queue.enqueue_read(buffer, &sink, 1, {kernel});
  EXPECT_DOUBLE_EQ(queue.event(read).start_s, queue.event(kernel).end_s);
  EXPECT_DOUBLE_EQ(queue.finish_time(), queue.event(read).end_s);
}

TEST(Runtime, KernelsExecuteFunctionally) {
  omega::par::ThreadPool pool(2);
  CommandQueue queue(test_spec(), pool);
  std::vector<std::atomic<int>> hits(128);
  NdRange range;
  range.global_size = 128;
  range.local_size = 32;
  queue.enqueue_kernel("touch", range,
                       [&](const WorkItem& item) {
                         if (item.global_id < hits.size()) {
                           hits[item.global_id].fetch_add(1);
                         }
                       },
                       1e-6);
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(Runtime, OverlapAccounting) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  Buffer buffer(2'000'000);
  std::vector<std::uint8_t> payload(2'000'000, 1);
  NdRange range;
  range.global_size = 1;
  // Kernel occupies [0, 4ms); write occupies [0, ~2ms): fully hidden.
  queue.enqueue_kernel("long", range, [](const WorkItem&) {}, 4e-3);
  const auto write = queue.enqueue_write(buffer, payload.data(), payload.size());
  EXPECT_NEAR(queue.overlap_seconds(), queue.event(write).duration(), 1e-12);
  EXPECT_NEAR(queue.finish_time(), 4e-3, 1e-12);
}

TEST(Runtime, HostEngineSerializesPacking) {
  omega::par::ThreadPool pool(1);
  CommandQueue queue(test_spec(), pool);
  const auto h1 = queue.enqueue_host("pack1", 1e-3);
  const auto h2 = queue.enqueue_host("pack2", 1e-3);
  EXPECT_DOUBLE_EQ(queue.event(h2).start_s, queue.event(h1).end_s);
  // Host work does not count as transfer/compute.
  EXPECT_DOUBLE_EQ(queue.transfer_busy_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(queue.compute_busy_seconds(), 0.0);
}

// ---------------------------------------------------------------------------
// Timeline pipeline vs closed-form model
// ---------------------------------------------------------------------------

TEST(TimelinePipeline, ConsistentWithClosedFormModel) {
  const auto dataset = omega::sim::make_dataset({.snps = 3'000,
                                                 .samples = 50,
                                                 .locus_length_bp = 300'000,
                                                 .rho = 30.0,
                                                 .seed = 123});
  omega::core::OmegaConfig config;
  config.grid_size = 200;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 2'000;
  config.min_window = 4;
  const auto workload = omega::core::analyze_workload(dataset, config);

  omega::par::ThreadPool pool(1);
  const auto spec = omega::hw::tesla_k80();
  const auto timeline =
      omega::hw::gpu::schedule_complete_omega(spec, pool, workload);

  double closed_form = 0.0;
  for (const auto& position : workload.positions) {
    if (position.combinations == 0) continue;
    const auto choice = omega::hw::gpu::dispatch(spec, position.combinations);
    closed_form += omega::hw::gpu::complete_position_cost(
                       spec, choice, position.combinations,
                       position.omega_payload_bytes)
                       .total_s;
  }

  EXPECT_GT(timeline.positions, 0u);
  // With the calibrated K80 constants, host packing dominates and the
  // schedule honestly shows (near-)zero transfer/compute overlap — the
  // paper's "large fraction of the total execution time is spent on data
  // transfers" observation. Overlap emerges when packing is cheap; see
  // TimelinePipeline.OverlapEmergesWhenHostIsFast.
  // The makespan can never beat the busiest engine or the critical path.
  EXPECT_GE(timeline.makespan_s, timeline.compute_busy_s);
  EXPECT_GE(timeline.makespan_s, timeline.transfer_busy_s);
  EXPECT_GE(timeline.makespan_s, timeline.host_busy_s);
  // Event schedule and closed-form are two views of the same costs; they
  // must agree within the modeling slack (the closed form caps hiding at a
  // fixed fraction, the schedule derives it).
  EXPECT_NEAR(timeline.makespan_s, closed_form, 0.5 * closed_form);
}

TEST(TimelinePipeline, OverlapEmergesWhenHostIsFast) {
  const auto dataset = omega::sim::make_dataset({.snps = 2'000,
                                                 .samples = 50,
                                                 .locus_length_bp = 200'000,
                                                 .rho = 20.0,
                                                 .seed = 124});
  omega::core::OmegaConfig config;
  config.grid_size = 100;
  config.window_unit = omega::core::WindowUnit::Snps;
  config.max_window = 1'500;
  config.min_window = 4;
  const auto workload = omega::core::analyze_workload(dataset, config);

  omega::par::ThreadPool pool(1);
  auto spec = omega::hw::tesla_k80();
  spec.host_pack_bandwidth_bps *= 1e4;  // packing out of the picture
  const auto timeline =
      omega::hw::gpu::schedule_complete_omega(spec, pool, workload);
  // Kernels for position i now run while position i+1's buffers stream in.
  EXPECT_GT(timeline.overlap_s, 0.0);
  EXPECT_LT(timeline.makespan_s,
            timeline.transfer_busy_s + timeline.compute_busy_s +
                timeline.host_busy_s);
}

}  // namespace
