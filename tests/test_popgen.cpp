// Tests for the population-genetics statistics: hand-computed cases,
// neutral-simulation expectations (E[pi] = E[theta_W] = theta, E[D] ~ 0),
// and the sweep signatures the statistics must expose.

#include <gtest/gtest.h>

#include <numeric>

#include "popgen/diversity.h"
#include "sim/coalescent.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "util/stats.h"

namespace {

using omega::io::Dataset;

TEST(Popgen, SiteFrequencySpectrumCountsBins) {
  // 4 samples; derived counts per site: 1, 1, 2, 3.
  const Dataset d({10, 20, 30, 40},
                  {{1, 0, 0, 0}, {0, 0, 1, 0}, {1, 1, 0, 0}, {1, 1, 1, 0}},
                  100);
  const auto spectrum = omega::popgen::site_frequency_spectrum(d);
  ASSERT_EQ(spectrum.size(), 3u);
  EXPECT_EQ(spectrum[0], 2u);  // singletons
  EXPECT_EQ(spectrum[1], 1u);  // doubletons
  EXPECT_EQ(spectrum[2], 1u);  // tripletons
  EXPECT_EQ(std::accumulate(spectrum.begin(), spectrum.end(), 0ull),
            d.num_sites());
}

TEST(Popgen, PiHandComputed) {
  // One site, 1 derived of 4: pi = 2*1*3 / (4*3) = 0.5.
  const Dataset d({10}, {{1, 0, 0, 0}}, 100);
  EXPECT_DOUBLE_EQ(omega::popgen::nucleotide_diversity(d), 0.5);
  // Two such sites: additive.
  const Dataset e({10, 20}, {{1, 0, 0, 0}, {0, 1, 1, 1}}, 100);
  EXPECT_DOUBLE_EQ(omega::popgen::nucleotide_diversity(e), 1.0);
}

TEST(Popgen, WattersonHandComputed) {
  // 3 sites, 4 samples: theta_W = 3 / (1 + 1/2 + 1/3).
  const Dataset d({10, 20, 30},
                  {{1, 0, 0, 0}, {1, 1, 0, 0}, {0, 0, 0, 1}}, 100);
  EXPECT_NEAR(omega::popgen::watterson_theta(d), 3.0 / (11.0 / 6.0), 1e-12);
}

TEST(Popgen, NeutralExpectations) {
  // Under neutrality both estimators average theta and Tajima's D ~ 0.
  omega::sim::CoalescentConfig config;
  config.samples = 20;
  config.theta = 30.0;
  config.rho = 20.0;
  omega::util::RunningStats pi, theta_w, tajima;
  for (std::uint64_t rep = 0; rep < 200; ++rep) {
    config.seed = 10'000 + rep;
    const auto dataset = omega::sim::simulate(config);
    pi.add(omega::popgen::nucleotide_diversity(dataset));
    theta_w.add(omega::popgen::watterson_theta(dataset));
    tajima.add(omega::popgen::tajimas_d(dataset));
  }
  EXPECT_NEAR(pi.mean(), config.theta, config.theta * 0.12);
  EXPECT_NEAR(theta_w.mean(), config.theta, config.theta * 0.10);
  EXPECT_NEAR(tajima.mean(), 0.0, 0.25);
}

TEST(Popgen, TajimaUndefinedCases) {
  const Dataset tiny({10}, {{1, 0}}, 100);
  EXPECT_DOUBLE_EQ(omega::popgen::tajimas_d(tiny), 0.0);
}

TEST(Popgen, SweepShiftsTajimaNegativeNearLocus) {
  // Signature (b): the sweep shifts the SFS toward extreme frequencies,
  // driving Tajima's D negative around the swept locus relative to the
  // genome background. Averaged over replicates.
  omega::util::RunningStats near_sweep, far_away;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    const auto neutral = omega::sim::make_dataset({.snps = 800,
                                                   .samples = 50,
                                                   .locus_length_bp = 1'000'000,
                                                   .rho = 100.0,
                                                   .seed = 600 + rep});
    omega::sim::SweepConfig sweep;
    sweep.sweep_position_bp = 500'000;
    sweep.carrier_fraction = 0.9;  // incomplete: carriers share the core
    sweep.tract_mean_bp = 150'000.0;
    sweep.thinning_max = 0.3;
    sweep.seed = 700 + rep;
    const auto swept = omega::sim::apply_sweep(neutral, sweep);
    near_sweep.add(omega::popgen::tajimas_d(swept.slice_bp(400'000, 600'000)));
    far_away.add(omega::popgen::tajimas_d(swept.slice_bp(0, 200'000)));
  }
  EXPECT_LT(near_sweep.mean(), far_away.mean());
}

TEST(Popgen, WindowedStatsCoverGenome) {
  const auto dataset = omega::sim::make_dataset({.snps = 400,
                                                 .samples = 30,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 20.0,
                                                 .seed = 800});
  const auto windows = omega::popgen::windowed_stats(dataset, 100'000, 50'000);
  ASSERT_EQ(windows.size(), 19u);  // (1e6 - 1e5)/5e4 + 1
  std::size_t total_sites = 0;
  for (const auto& window : windows) {
    EXPECT_EQ(window.end_bp - window.start_bp, 100'000);
    total_sites += window.segregating_sites;
  }
  // 50% overlap: every interior site is counted about twice.
  EXPECT_GT(total_sites, dataset.num_sites());
  // Degenerate parameters yield no windows.
  EXPECT_TRUE(omega::popgen::windowed_stats(dataset, 0, 1).empty());
}

TEST(Popgen, MissingCallsUseValidCounts) {
  const Dataset d({10}, {{1, 0, omega::io::Dataset::kMissing, 0}}, 100);
  // 1 derived of 3 valid: pi = 2*1*2/(3*2) = 2/3.
  EXPECT_NEAR(omega::popgen::nucleotide_diversity(d), 2.0 / 3.0, 1e-12);
}

}  // namespace
