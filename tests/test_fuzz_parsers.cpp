// Robustness fuzzing for the text parsers: random garbage, truncations, and
// structured mutations must produce either a parsed result or a typed
// exception — never a crash, hang, or invariant-violating Dataset.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/fasta.h"
#include "io/ms_format.h"
#include "io/parse_error.h"
#include "io/plink.h"
#include "core/report.h"
#include "io/vcf_lite.h"
#include "util/prng.h"

namespace {

using omega::util::Xoshiro256;

std::string random_garbage(Xoshiro256& rng, std::size_t length) {
  static constexpr char alphabet[] =
      "01acgtACGT \t\n.|/>#-:;,segsitespositions0123456789";
  std::string text;
  text.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    text.push_back(alphabet[rng.bounded(sizeof(alphabet) - 1)]);
  }
  return text;
}

/// A structurally plausible ms replicate that mutations can corrupt.
std::string valid_ms() {
  return "//\nsegsites: 4\npositions: 0.1 0.2 0.5 0.9\n"
         "0101\n1100\n0011\n";
}

template <typename Parser>
void expect_no_crash(const std::string& text, Parser parse) {
  std::istringstream in(text);
  try {
    parse(in);
  } catch (const std::exception&) {
    // Typed failure is acceptable; crashes/UB are what the fuzz hunts.
  }
}

TEST(FuzzParsers, MsRandomGarbage) {
  Xoshiro256 rng(0xF00D);
  for (int round = 0; round < 300; ++round) {
    expect_no_crash(random_garbage(rng, 20 + rng.bounded(400)),
                    [](std::istream& in) { (void)omega::io::read_ms(in); });
  }
}

TEST(FuzzParsers, MsStructuredMutations) {
  Xoshiro256 rng(0xBEEF);
  for (int round = 0; round < 300; ++round) {
    std::string text = valid_ms();
    // Mutate a few random bytes.
    const std::size_t edits = 1 + rng.bounded(5);
    for (std::size_t e = 0; e < edits; ++e) {
      text[rng.bounded(text.size())] =
          static_cast<char>(32 + rng.bounded(90));
    }
    std::istringstream in(text);
    try {
      const auto replicates = omega::io::read_ms(in);
      for (const auto& dataset : replicates) {
        dataset.validate();  // anything parsed must satisfy invariants
      }
    } catch (const std::exception&) {
    }
  }
}

TEST(FuzzParsers, MsTruncations) {
  const std::string text = valid_ms();
  for (std::size_t cut = 0; cut <= text.size(); ++cut) {
    std::istringstream in(text.substr(0, cut));
    try {
      for (const auto& dataset : omega::io::read_ms(in)) dataset.validate();
    } catch (const std::exception&) {
    }
  }
}

TEST(FuzzParsers, FastaRandomGarbage) {
  Xoshiro256 rng(0xCAFE);
  for (int round = 0; round < 300; ++round) {
    expect_no_crash(random_garbage(rng, 20 + rng.bounded(300)),
                    [](std::istream& in) {
                      const auto records = omega::io::read_fasta(in, false);
                      if (!records.empty() &&
                          !records.front().sequence.empty()) {
                        bool aligned = true;
                        for (const auto& record : records) {
                          aligned &= record.sequence.size() ==
                                     records.front().sequence.size();
                        }
                        if (aligned) {
                          omega::io::fasta_to_dataset(records).validate();
                        }
                      }
                    });
  }
}

TEST(FuzzParsers, VcfRandomGarbage) {
  Xoshiro256 rng(0xD00D);
  for (int round = 0; round < 300; ++round) {
    std::string text =
        "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\n";
    text += random_garbage(rng, 30 + rng.bounded(300));
    expect_no_crash(text, [](std::istream& in) {
      omega::io::read_vcf(in).validate();
    });
  }
}

TEST(FuzzParsers, VcfStructuredMutations) {
  Xoshiro256 rng(0xABBA);
  const std::string base =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n"
      "1\t100\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|1\n"
      "1\t200\t.\tC\tG\t.\t.\t.\tGT\t0|0\t.|1\n";
  for (int round = 0; round < 300; ++round) {
    std::string text = base;
    const std::size_t edits = 1 + rng.bounded(4);
    for (std::size_t e = 0; e < edits; ++e) {
      text[rng.bounded(text.size())] = static_cast<char>(32 + rng.bounded(90));
    }
    expect_no_crash(text, [](std::istream& in) {
      omega::io::read_vcf(in).validate();
    });
  }
}

// ---- Crash corpus: regressions for the raw-stoi/stoll era -----------------
// These inputs used to escape as std::invalid_argument / std::out_of_range
// (or crash the loader outright); they must now produce a typed ParseError,
// a skipped record, or a clean parse — never an unrelated exception type.

TEST(ParserHardening, MsSegsitesOverflowIsParseError) {
  std::istringstream in(
      "//\nsegsites: 999999999999999999999999\npositions: 0.5\n1\n");
  try {
    (void)omega::io::read_ms(in);
    FAIL() << "expected ParseError";
  } catch (const omega::io::ParseError& error) {
    EXPECT_EQ(error.format(), "ms");
    EXPECT_EQ(error.line(), 2u);
    EXPECT_NE(error.reason().find("segsites"), std::string::npos);
  }
}

TEST(ParserHardening, MsSegsitesGarbageIsParseError) {
  std::istringstream garbage("//\nsegsites: lots\n");
  EXPECT_THROW((void)omega::io::read_ms(garbage), omega::io::ParseError);
  std::istringstream truncated("//\nsegsites:\n");
  EXPECT_THROW((void)omega::io::read_ms(truncated), omega::io::ParseError);
}

TEST(ParserHardening, MsBadAlleleIsParseErrorWithReplicateLine) {
  std::istringstream in(
      "header\n\n//\nsegsites: 3\npositions: 0.1 0.2 0.3\n010\n0x0\n");
  try {
    (void)omega::io::read_ms(in);
    FAIL() << "expected ParseError";
  } catch (const omega::io::ParseError& error) {
    EXPECT_EQ(error.line(), 3u);  // the replicate's "//" marker
    EXPECT_NE(error.reason().find("allele"), std::string::npos);
  }
}

TEST(ParserHardening, MsParseErrorIsARuntimeError) {
  // Existing catch sites handle std::runtime_error; the typed error must
  // keep flowing through them.
  std::istringstream in("//\nsegsites: nope\n");
  EXPECT_THROW((void)omega::io::read_ms(in), std::runtime_error);
}

TEST(ParserHardening, VcfPosOverflowIsSkippedNotFatal) {
  const std::string text =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n"
      "1\t999999999999999999999999\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|0\n"
      "1\t200\t.\tC\tG\t.\t.\t.\tGT\t0|1\t1|0\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const auto dataset = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_total, 2u);
  EXPECT_EQ(report.records_skipped, 1u);
  EXPECT_EQ(dataset.num_sites(), 1u);
  EXPECT_EQ(dataset.position(0), 200);
}

TEST(ParserHardening, VcfGarbagePosIsSkippedNotFatal) {
  const std::string text =
      "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS1\tS2\n"
      "1\tabc\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|0\n"
      "1\t-5\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|0\n"
      "1\t\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|0\n"
      "1\t100\t.\tA\tT\t.\t.\t.\tGT\t0|1\t1|0\n";
  std::istringstream in(text);
  omega::io::VcfLoadReport report;
  const auto dataset = omega::io::read_vcf(in, &report);
  EXPECT_EQ(report.records_skipped, 3u);
  EXPECT_EQ(dataset.num_sites(), 1u);
}

TEST(ParserHardening, TryParseHelpersRejectJunk) {
  using omega::io::try_parse_int64;
  using omega::io::try_parse_uint64;
  EXPECT_EQ(try_parse_int64("123"), 123);
  EXPECT_EQ(try_parse_int64("-7"), -7);
  EXPECT_FALSE(try_parse_int64(""));
  EXPECT_FALSE(try_parse_int64("12x"));
  EXPECT_FALSE(try_parse_int64(" 12"));
  EXPECT_FALSE(try_parse_int64("999999999999999999999999"));
  EXPECT_EQ(try_parse_uint64("42"), 42u);
  EXPECT_FALSE(try_parse_uint64("-1"));
  EXPECT_FALSE(try_parse_uint64("18446744073709551616"));  // 2^64
}

TEST(ParserHardening, PlinkMapPositionOverflowIsParseError) {
  std::istringstream ped("f1 i1 0 0 1 0  A G\n");
  std::istringstream map_in("1 rs1 0 999999999999999999999999\n");
  try {
    (void)omega::io::read_plink(ped, map_in);
    FAIL() << "expected ParseError";
  } catch (const omega::io::ParseError& error) {
    EXPECT_EQ(error.format(), "plink");
    EXPECT_EQ(error.line(), 1u);
    EXPECT_NE(error.reason().find("position"), std::string::npos);
  }
}

TEST(ParserHardening, PlinkMapGarbageIsParseError) {
  // Garbage position, negative position, shifted line (id lands in the
  // distance column), and a short line must all fail with the typed error.
  const char* bad_maps[] = {
      "1 rs1 0 12x34\n",
      "1 rs1 0 -5\n",
      "1 rs1 notanumber 100\n",
      "1 rs1 0\n",
  };
  for (const char* map_text : bad_maps) {
    std::istringstream ped("f1 i1 0 0 1 0  A G\n");
    std::istringstream map_in(map_text);
    EXPECT_THROW((void)omega::io::read_plink(ped, map_in),
                 omega::io::ParseError)
        << "map: " << map_text;
  }
}

TEST(ParserHardening, PlinkPedErrorsCarryLineNumbers) {
  const std::string map_text = "1 rs1 0 100\n1 rs2 0 200\n";
  // Second individual is missing an allele pair.
  std::istringstream ped("f1 i1 0 0 1 0  A G  C C\nf2 i2 0 0 1 0  A A\n");
  std::istringstream map_in(map_text);
  try {
    (void)omega::io::read_plink(ped, map_in);
    FAIL() << "expected ParseError";
  } catch (const omega::io::ParseError& error) {
    EXPECT_EQ(error.format(), "plink");
    EXPECT_EQ(error.line(), 2u);
    EXPECT_NE(error.reason().find("i2"), std::string::npos);
  }
}

TEST(ParserHardening, PlinkTrailingGenotypesAreParseError) {
  std::istringstream ped("f1 i1 0 0 1 0  A G  C C  T T\n");
  std::istringstream map_in("1 rs1 0 100\n1 rs2 0 200\n");
  EXPECT_THROW((void)omega::io::read_plink(ped, map_in),
               omega::io::ParseError);
}

TEST(ParserHardening, PlinkParseErrorIsARuntimeError) {
  // Pre-hardening catch sites expect std::runtime_error; the typed error
  // must keep flowing through them.
  std::istringstream ped("garbage\n");
  std::istringstream map_in("1 rs1 0 100\n");
  EXPECT_THROW((void)omega::io::read_plink(ped, map_in), std::runtime_error);
}

TEST(FuzzParsers, PlinkStructuredMutations) {
  Xoshiro256 rng(0x1234);
  const std::string map_base = "1 rs1 0 100\n1 rs2 0 200\n";
  const std::string ped_base =
      "f1 i1 0 0 1 0  A G  C C\nf2 i2 0 0 1 0  A A  C T\n";
  for (int round = 0; round < 300; ++round) {
    std::string ped = ped_base, map_text = map_base;
    ped[rng.bounded(ped.size())] = static_cast<char>(32 + rng.bounded(90));
    if (round % 3 == 0) {
      map_text[rng.bounded(map_text.size())] =
          static_cast<char>(32 + rng.bounded(90));
    }
    std::istringstream ped_in(ped), map_in(map_text);
    try {
      omega::io::read_plink(ped_in, map_in).validate();
    } catch (const std::exception&) {
    }
  }
}

TEST(FuzzParsers, ReportRoundRobin) {
  Xoshiro256 rng(0x5678);
  for (int round = 0; round < 200; ++round) {
    expect_no_crash(random_garbage(rng, 10 + rng.bounded(200)),
                    [](std::istream& in) {
                      (void)omega::core::read_report(in);
                    });
  }
}

}  // namespace
