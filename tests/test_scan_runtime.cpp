// Crash-safe runtime tests: cooperative cancellation (tokens, signals,
// deadlines), checkpoint serialization, and the headline guarantee —
// interrupt a streaming scan after K committed chunks, resume it, and the
// final result is bitwise identical to an uninterrupted run for every
// backend, including under fault injection.

#include <gtest/gtest.h>

#include <cmath>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>

#include "core/checkpoint.h"
#include "core/metrics_json.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gemm_ld_kernel.h"
#include "hw/gpu/gpu_backend.h"
#include "io/chunk_reader.h"
#include "io/fingerprint.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "sweep/detector.h"
#include "util/cancel.h"
#include "util/fault.h"
#include "util/progress.h"
#include "util/telemetry.h"

namespace {

using omega::core::OmegaConfig;
using omega::core::ScannerOptions;
using omega::core::ScanResult;
using omega::core::StreamScanOptions;
using omega::io::DatasetChunkReader;
using omega::util::CancelReason;
using omega::util::CancelToken;

omega::io::Dataset runtime_dataset(std::uint64_t seed,
                                   std::size_t sites = 150) {
  return omega::sim::make_dataset({.snps = sites,
                                   .samples = 24,
                                   .locus_length_bp = 1'000'000,
                                   .rho = 25.0,
                                   .seed = seed});
}

OmegaConfig runtime_config() {
  OmegaConfig config;
  config.grid_size = 14;
  config.max_window = 200'000;
  config.min_window = 10'000;
  return config;
}

void expect_bitwise_equal(const ScanResult& expected, const ScanResult& actual) {
  ASSERT_EQ(expected.scores.size(), actual.scores.size());
  for (std::size_t g = 0; g < expected.scores.size(); ++g) {
    const auto& e = expected.scores[g];
    const auto& a = actual.scores[g];
    EXPECT_EQ(e.valid, a.valid) << "grid " << g;
    EXPECT_EQ(e.quarantined, a.quarantined) << "grid " << g;
    EXPECT_EQ(e.position_bp, a.position_bp) << "grid " << g;
    if (!e.valid) continue;
    EXPECT_EQ(e.best_a, a.best_a) << "grid " << g;
    EXPECT_EQ(e.best_b, a.best_b) << "grid " << g;
    EXPECT_EQ(e.evaluated, a.evaluated) << "grid " << g;
    EXPECT_EQ(std::memcmp(&e.max_omega, &a.max_omega, sizeof(double)), 0)
        << "grid " << g << ": " << e.max_omega << " vs " << a.max_omega;
  }
}

/// Temp checkpoint path that cleans up after itself (and the .tmp sibling).
/// The current test's name is folded into the filename so tests sharing a
/// base name never collide when ctest runs them in parallel processes.
class CheckpointPath {
 public:
  explicit CheckpointPath(const std::string& name)
      : path_((std::filesystem::temp_directory_path() / decorate(name))
                  .string()) {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }
  ~CheckpointPath() {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  static std::string decorate(const std::string& name) {
    std::string tag;
    if (const auto* info =
            ::testing::UnitTest::GetInstance()->current_test_info()) {
      tag = std::string(info->test_suite_name()) + "_" + info->name() + "_";
    }
    return tag + name;
  }

  std::string path_;
};

using BackendFactory = std::function<std::unique_ptr<omega::core::OmegaBackend>()>;

/// Backend factory + LD wiring per simulated accelerator, mirroring
/// sweep::detect_sweeps_stream (one shared pool, fresh backend per worker).
struct BackendSetup {
  BackendFactory factory;  // empty => CPU reference loop
  void apply_ld(ScannerOptions& options) const {
    if (ld_factory) options.ld_factory = ld_factory;
  }
  std::function<std::unique_ptr<omega::ld::LdEngine>(const omega::ld::SnpMatrix&)>
      ld_factory;
};

BackendSetup cpu_setup() { return {}; }

BackendSetup gpu_setup(omega::util::fault::FaultPlan fault_plan = {}) {
  static omega::par::ThreadPool pool;
  const auto spec = omega::hw::tesla_k80();
  BackendSetup setup;
  setup.ld_factory = [spec](const omega::ld::SnpMatrix& snps) {
    return std::make_unique<omega::hw::gpu::GpuLdEngine>(snps, pool, spec);
  };
  setup.factory = [spec, fault_plan] {
    omega::hw::gpu::GpuBackendOptions backend_options;
    backend_options.fault_plan = fault_plan;
    return std::make_unique<omega::hw::gpu::GpuOmegaBackend>(spec, pool,
                                                             backend_options);
  };
  return setup;
}

BackendSetup fpga_setup(omega::util::fault::FaultPlan fault_plan = {}) {
  const auto spec = omega::hw::alveo_u200();
  BackendSetup setup;
  setup.factory = [spec, fault_plan] {
    omega::hw::fpga::FpgaBackendOptions backend_options;
    backend_options.fault_plan = fault_plan;
    return std::make_unique<omega::hw::fpga::FpgaOmegaBackend>(
        spec, backend_options);
  };
  return setup;
}

/// The kill-and-resume identity check: reference run (uninterrupted, no
/// checkpointing), interrupted run (cancel once `cancel_after_chunks` have
/// committed), resumed run — the resumed scores must be bitwise identical to
/// the reference for every backend.
void kill_and_resume_identity(const BackendSetup& setup,
                              std::size_t threads = 1,
                              omega::util::fault::FaultPlan fault_plan = {},
                              std::uint64_t cancel_after_chunks = 1) {
  const auto d = runtime_dataset(71, 150);
  ScannerOptions options;
  options.config = runtime_config();
  options.threads = threads;
  setup.apply_ld(options);

  StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;

  // Reference: uninterrupted, no checkpointing.
  DatasetChunkReader reference_reader(d);
  const ScanResult reference = omega::core::stream_scan(
      reference_reader, options, stream_options, setup.factory);
  (void)fault_plan;  // plans are baked into setup.factory

  const CheckpointPath ckpt("omega_runtime_kill_resume.ckpt");
  stream_options.checkpoint_path = ckpt.str();

  // Interrupted run: request cancellation from the progress sink as soon as
  // `cancel_after_chunks` chunks have committed.
  CancelToken token;
  omega::util::ProgressReporter progress(
      [&](const omega::util::ProgressUpdate& update) {
        if (update.chunks_done >= cancel_after_chunks) {
          token.request(CancelReason::Api);
        }
      },
      /*interval_seconds=*/0.0);
  ScannerOptions interrupted_options = options;
  interrupted_options.cancel = &token;
  interrupted_options.progress = &progress;
  DatasetChunkReader interrupted_reader(d);
  const ScanResult interrupted = omega::core::stream_scan(
      interrupted_reader, interrupted_options, stream_options, setup.factory);
  ASSERT_TRUE(token.cancelled());
  EXPECT_TRUE(interrupted.profile.runtime.cancelled);
  EXPECT_TRUE(interrupted.profile.runtime.partial);
  EXPECT_EQ(interrupted.profile.runtime.cancel_reason, "api");
  EXPECT_GT(interrupted.profile.runtime.checkpoints_written, 0u);
  EXPECT_GT(interrupted.profile.runtime.positions_skipped, 0u);

  // The checkpoint on disk covers only fully committed chunks.
  const auto saved = omega::core::load_checkpoint(ckpt.str());
  EXPECT_GE(saved.chunks_completed, cancel_after_chunks);
  EXPECT_LT(saved.chunks_completed, saved.chunks_total);
  EXPECT_FALSE(std::filesystem::exists(ckpt.str() + ".tmp"));

  // Resume: no cancellation this time; must land exactly on the reference.
  StreamScanOptions resume_options = stream_options;
  resume_options.resume = true;
  DatasetChunkReader resumed_reader(d);
  const ScanResult resumed = omega::core::stream_scan(
      resumed_reader, options, resume_options, setup.factory);
  EXPECT_EQ(resumed.profile.runtime.resume_validations, 1u);
  EXPECT_EQ(resumed.profile.runtime.chunks_resumed, saved.chunks_completed);
  EXPECT_FALSE(resumed.profile.runtime.partial);
  expect_bitwise_equal(reference, resumed);
}

// ------------------------------------------------------------ cancel units --

TEST(CancelTokenTest, FirstReasonSticksAndResetRearms) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  token.request(CancelReason::Signal);
  token.request(CancelReason::Deadline);
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::Signal);
  token.reset();
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::None);
}

TEST(CancelTokenTest, ThrowIfCancelledCarriesReason) {
  CancelToken token;
  EXPECT_NO_THROW(token.throw_if_cancelled());
  token.request(CancelReason::Deadline);
  try {
    token.throw_if_cancelled();
    FAIL() << "expected CancelledError";
  } catch (const omega::util::CancelledError& error) {
    EXPECT_EQ(error.reason(), CancelReason::Deadline);
    EXPECT_NE(std::string(error.what()).find("deadline"), std::string::npos);
  }
}

TEST(DeadlineTest, VirtualClockExpiry) {
  double now = 100.0;
  const omega::util::Deadline deadline(2.0, [&] { return now; });
  ASSERT_TRUE(deadline.enabled());
  EXPECT_FALSE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining(), 2.0);
  now = 101.5;
  EXPECT_FALSE(deadline.expired());
  now = 102.5;
  EXPECT_TRUE(deadline.expired());
  EXPECT_DOUBLE_EQ(deadline.remaining(), 0.0);

  const omega::util::Deadline disabled;
  EXPECT_FALSE(disabled.enabled());
  EXPECT_FALSE(disabled.expired());
}

TEST(SignalHandlerTest, RaiseSigintRequestsProcessToken) {
  omega::util::process_cancel_token().reset();
  ASSERT_TRUE(omega::util::install_cancel_signal_handlers());
  std::raise(SIGINT);
  EXPECT_TRUE(omega::util::process_cancel_token().cancelled());
  EXPECT_EQ(omega::util::process_cancel_token().reason(),
            CancelReason::Signal);
  omega::util::process_cancel_token().reset();
}

// ------------------------------------------------- config hash/fingerprint --

TEST(ScanConfigHashTest, ThreadCountExcludedScanConfigIncluded) {
  ScannerOptions a;
  a.config = runtime_config();
  ScannerOptions b = a;
  b.threads = 8;  // resume with a different worker count is legal
  EXPECT_EQ(omega::core::scan_config_hash(a, 40, "cpu"),
            omega::core::scan_config_hash(b, 40, "cpu"));

  EXPECT_NE(omega::core::scan_config_hash(a, 40, "cpu"),
            omega::core::scan_config_hash(a, 50, "cpu"));  // chunk decomposition
  ScannerOptions wider = a;
  wider.config.grid_size = 20;
  EXPECT_NE(omega::core::scan_config_hash(a, 40, "cpu"),
            omega::core::scan_config_hash(wider, 40, "cpu"));
  EXPECT_NE(omega::core::scan_config_hash(a, 40, "cpu"),
            omega::core::scan_config_hash(a, 40, "fpga-sim:u200"));
}

TEST(StreamFingerprintTest, DetectsDatasetChanges) {
  const auto d1 = runtime_dataset(81, 60);
  const auto d2 = runtime_dataset(82, 60);
  DatasetChunkReader r1(d1), r1b(d1), r2(d2);
  const auto f1 = omega::io::fingerprint_stream(r1.index());
  const auto f1b = omega::io::fingerprint_stream(r1b.index());
  const auto f2 = omega::io::fingerprint_stream(r2.index());
  EXPECT_EQ(f1, f1b);
  EXPECT_FALSE(f1 == f2);
  const auto named = omega::io::fingerprint_stream(r1.index(), "/data/a.ms");
  EXPECT_FALSE(f1 == named);
  EXPECT_NE(named.describe().find("/data/a.ms"), std::string::npos);
}

// -------------------------------------------------- checkpoint round trips --

TEST(CheckpointJsonTest, RoundTripsScoresBitwiseIncludingNan) {
  omega::core::ScanCheckpoint ckpt;
  const auto d = runtime_dataset(83, 50);
  DatasetChunkReader reader(d);
  ckpt.fingerprint = omega::io::fingerprint_stream(reader.index());
  ckpt.config_hash = 0xDEADBEEFCAFEF00Dull;
  ckpt.config_summary = "grid=14 unit=bp";
  ckpt.chunks_total = 3;
  ckpt.chunks_completed = 1;
  ckpt.grid_size = 5;
  ckpt.grid_committed = 3;

  omega::core::PositionScore valid;
  valid.position_bp = 12'345;
  valid.max_omega = std::nan("");  // NaN must survive the round trip bitwise
  valid.best_a = 3;
  valid.best_b = 9;
  valid.evaluated = 42;
  valid.valid = true;
  omega::core::PositionScore quarantined;
  quarantined.position_bp = 23'456;
  quarantined.quarantined = true;
  omega::core::PositionScore invalid;
  invalid.position_bp = 34'567;
  ckpt.scores = {valid, quarantined, invalid};

  ckpt.totals.ld_seconds = 1.25;
  ckpt.totals.omega_evaluations = 777;
  ckpt.totals.stream.io_seconds = 0.5;
  ckpt.totals.sched.workers_detail.resize(2);
  ckpt.totals.sched.workers_detail[1].spans = 4;

  const auto doc = omega::core::checkpoint_to_json(ckpt);
  const auto back = omega::core::checkpoint_from_json(doc);
  EXPECT_EQ(back.fingerprint, ckpt.fingerprint);
  EXPECT_EQ(back.config_hash, ckpt.config_hash);
  EXPECT_EQ(back.config_summary, ckpt.config_summary);
  EXPECT_EQ(back.chunks_completed, 1u);
  EXPECT_EQ(back.grid_committed, 3u);
  ASSERT_EQ(back.scores.size(), 3u);
  EXPECT_TRUE(back.scores[0].valid);
  EXPECT_EQ(std::memcmp(&back.scores[0].max_omega, &valid.max_omega,
                        sizeof(double)),
            0);
  EXPECT_EQ(back.scores[0].best_b, 9u);
  EXPECT_TRUE(back.scores[1].quarantined);
  EXPECT_FALSE(back.scores[2].valid);
  EXPECT_DOUBLE_EQ(back.totals.ld_seconds, 1.25);
  EXPECT_EQ(back.totals.omega_evaluations, 777u);
  EXPECT_DOUBLE_EQ(back.totals.stream.io_seconds, 0.5);
  ASSERT_EQ(back.totals.sched.workers_detail.size(), 2u);
  EXPECT_EQ(back.totals.sched.workers_detail[1].spans, 4u);
}

TEST(CheckpointFileTest, AtomicWriteLeavesNoTempAndLoadsBack) {
  const CheckpointPath path("omega_runtime_atomic.ckpt");
  omega::core::ScanCheckpoint ckpt;
  ckpt.chunks_total = 2;
  ckpt.grid_size = 4;
  const auto bytes = omega::core::write_checkpoint(path.str(), ckpt);
  EXPECT_GT(bytes, 0u);
  EXPECT_TRUE(std::filesystem::exists(path.str()));
  EXPECT_FALSE(std::filesystem::exists(path.str() + ".tmp"));
  const auto back = omega::core::load_checkpoint(path.str());
  EXPECT_EQ(back.chunks_total, 2u);
  EXPECT_EQ(back.grid_size, 4u);
}

TEST(CheckpointFileTest, LoadRejectsMissingAndMalformed) {
  EXPECT_THROW(
      (void)omega::core::load_checkpoint("/nonexistent/omega_nope.ckpt"),
      std::runtime_error);
  const CheckpointPath path("omega_runtime_malformed.ckpt");
  std::ofstream(path.str()) << "{not json";
  EXPECT_THROW((void)omega::core::load_checkpoint(path.str()),
               std::runtime_error);
  std::ofstream(path.str()) << "{\"schema\": \"something.else\"}";
  EXPECT_THROW((void)omega::core::load_checkpoint(path.str()),
               std::runtime_error);
}

TEST(TelemetryJsonTest, RoundTripsThroughFromJson) {
  const auto begin = omega::util::telemetry::snapshot();
  omega::util::telemetry::counter("test.ckpt.roundtrip.counter").add(5);
  auto& hist = omega::util::telemetry::histogram("test.ckpt.roundtrip.hist");
  hist.record(0.001);
  hist.record(0.002);
  hist.record(4.0);
  const auto snap = omega::util::telemetry::snapshot().delta_since(begin);

  const auto doc = omega::core::metrics::telemetry_json(snap);
  const auto back = omega::core::metrics::telemetry_from_json(doc);

  auto find_counter = [](const omega::util::telemetry::RegistrySnapshot& s,
                         const std::string& name) -> std::uint64_t {
    for (const auto& [n, v] : s.counters) {
      if (n == name) return v;
    }
    return 0;
  };
  EXPECT_EQ(find_counter(back, "test.ckpt.roundtrip.counter"), 5u);
  for (const auto& [name, h] : back.histograms) {
    if (name != "test.ckpt.roundtrip.hist") continue;
    EXPECT_EQ(h.count, 3u);
    EXPECT_DOUBLE_EQ(h.sum, 0.001 + 0.002 + 4.0);
    std::uint64_t bucket_total = 0;
    for (const auto bucket : h.buckets) bucket_total += bucket;
    EXPECT_EQ(bucket_total, 3u);
    return;
  }
  FAIL() << "histogram missing from round trip";
}

// ------------------------------------------------------- deadline behavior --

TEST(ScanDeadlineTest, VirtualClockExpiryYieldsPartialV8Metrics) {
  const auto d = runtime_dataset(84, 150);
  omega::sweep::DetectorOptions options;
  options.config = runtime_config();
  options.deadline_seconds = 3.0;
  double now = 0.0;
  options.deadline_clock = [&now] { return now += 1.0; };  // expires fast
  const auto report = omega::sweep::detect_sweeps(d, options);

  EXPECT_TRUE(report.partial);
  EXPECT_TRUE(report.profile.runtime.partial);
  EXPECT_TRUE(report.profile.runtime.cancelled);
  EXPECT_EQ(report.profile.runtime.cancel_reason, "deadline");
  EXPECT_EQ(report.profile.runtime.deadline_outcome, "expired");
  EXPECT_GT(report.profile.runtime.positions_skipped, 0u);

  // The metrics document carries the schema-v8 runtime block.
  const auto metrics =
      omega::core::metrics::JsonValue::parse(report.metrics_json("deadline"));
  EXPECT_EQ(metrics.at("schema_version").as_int(),
            omega::core::metrics::kSchemaVersion);
  const auto& runtime = metrics.at("runtime");
  EXPECT_TRUE(runtime.at("partial").as_bool());
  EXPECT_EQ(runtime.at("deadline_outcome").as_string(), "expired");
  EXPECT_DOUBLE_EQ(runtime.at("deadline_seconds").as_double(), 3.0);
}

TEST(ScanDeadlineTest, GenerousDeadlineIsMet) {
  const auto d = runtime_dataset(85, 60);
  omega::sweep::DetectorOptions options;
  options.config = runtime_config();
  options.deadline_seconds = 3'600.0;
  const auto report = omega::sweep::detect_sweeps(d, options);
  EXPECT_FALSE(report.partial);
  EXPECT_FALSE(report.profile.runtime.cancelled);
  EXPECT_EQ(report.profile.runtime.deadline_outcome, "met");
}

TEST(ScanDeadlineTest, SignalPreemptsDeadlineOutcome) {
  const auto d = runtime_dataset(86, 60);
  CancelToken token;
  token.request(CancelReason::Signal);  // cancelled before the scan starts
  omega::sweep::DetectorOptions options;
  options.config = runtime_config();
  options.cancel = &token;
  options.deadline_seconds = 3'600.0;
  const auto report = omega::sweep::detect_sweeps(d, options);
  EXPECT_TRUE(report.partial);
  EXPECT_EQ(report.profile.runtime.cancel_reason, "signal");
  EXPECT_EQ(report.profile.runtime.deadline_outcome, "preempted");
}

// ------------------------------------------------------- kill-and-resume ----

TEST(StreamKillResume, CpuBitwiseIdentity) {
  kill_and_resume_identity(cpu_setup());
}

TEST(StreamKillResume, CpuThreadedBitwiseIdentity) {
  kill_and_resume_identity(cpu_setup(), /*threads=*/3);
}

TEST(StreamKillResume, GpuSimBitwiseIdentity) {
  kill_and_resume_identity(gpu_setup());
}

TEST(StreamKillResume, FpgaSimBitwiseIdentity) {
  kill_and_resume_identity(fpga_setup());
}

TEST(StreamKillResume, GpuSimFaultInjectionConverges) {
  // Fault schedules are not replayed across a resume; the retry engine must
  // still converge every transient fault to the same scores, so the identity
  // holds for fault-injected runs too.
  omega::util::fault::FaultPlan plan;
  plan.mode = omega::util::fault::FaultMode::TransientNan;
  plan.rate = 0.3;
  plan.seed = 2024;
  kill_and_resume_identity(gpu_setup(plan));
}

TEST(StreamKillResume, ResumeOfCompleteRunRescansNothing) {
  const auto d = runtime_dataset(72, 120);
  ScannerOptions options;
  options.config = runtime_config();
  const CheckpointPath ckpt("omega_runtime_complete.ckpt");
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  stream_options.checkpoint_path = ckpt.str();

  DatasetChunkReader first_reader(d);
  const ScanResult first =
      omega::core::stream_scan(first_reader, options, stream_options);
  EXPECT_FALSE(first.profile.runtime.partial);
  // The checkpoint is kept on completion so a re-run can prove it is done.
  const auto saved = omega::core::load_checkpoint(ckpt.str());
  EXPECT_EQ(saved.chunks_completed, saved.chunks_total);

  StreamScanOptions resume_options = stream_options;
  resume_options.resume = true;
  DatasetChunkReader second_reader(d);
  const ScanResult second =
      omega::core::stream_scan(second_reader, options, resume_options);
  expect_bitwise_equal(first, second);
  EXPECT_EQ(second.profile.positions_scanned, first.profile.positions_scanned)
      << "resume of a complete run must not rescan positions";
  EXPECT_EQ(second.profile.runtime.chunks_resumed, saved.chunks_total);
}

TEST(StreamKillResume, ResumeValidationRejectsMismatches) {
  const auto d = runtime_dataset(73, 120);
  ScannerOptions options;
  options.config = runtime_config();
  const CheckpointPath ckpt("omega_runtime_mismatch.ckpt");
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  stream_options.checkpoint_path = ckpt.str();
  DatasetChunkReader writer_reader(d);
  (void)omega::core::stream_scan(writer_reader, options, stream_options);

  StreamScanOptions resume_options = stream_options;
  resume_options.resume = true;

  // Different dataset.
  const auto other = runtime_dataset(74, 120);
  DatasetChunkReader other_reader(other);
  EXPECT_THROW((void)omega::core::stream_scan(other_reader, options,
                                              resume_options),
               omega::core::ResumeMismatchError);

  // Changed chunk decomposition.
  StreamScanOptions changed_chunks = resume_options;
  changed_chunks.chunk_sites = 60;
  DatasetChunkReader chunks_reader(d);
  EXPECT_THROW((void)omega::core::stream_scan(chunks_reader, options,
                                              changed_chunks),
               omega::core::ResumeMismatchError);

  // Changed grid config.
  ScannerOptions changed_grid = options;
  changed_grid.config.grid_size = 20;
  DatasetChunkReader grid_reader(d);
  EXPECT_THROW((void)omega::core::stream_scan(grid_reader, changed_grid,
                                              resume_options),
               omega::core::ResumeMismatchError);

  // Resume without a checkpoint path is a usage error.
  StreamScanOptions no_path;
  no_path.resume = true;
  DatasetChunkReader no_path_reader(d);
  EXPECT_THROW(
      (void)omega::core::stream_scan(no_path_reader, options, no_path),
      std::invalid_argument);
}

TEST(StreamKillResume, InterruptedMetricsCarryCheckpointCounters) {
  const auto d = runtime_dataset(75, 150);
  ScannerOptions options;
  options.config = runtime_config();
  const CheckpointPath ckpt("omega_runtime_metrics.ckpt");
  StreamScanOptions stream_options;
  stream_options.chunk_sites = 40;
  stream_options.checkpoint_path = ckpt.str();

  CancelToken token;
  omega::util::ProgressReporter progress(
      [&](const omega::util::ProgressUpdate& update) {
        if (update.chunks_done >= 1) token.request(CancelReason::Api);
      },
      0.0);
  options.cancel = &token;
  options.progress = &progress;
  DatasetChunkReader reader(d);
  const ScanResult result =
      omega::core::stream_scan(reader, options, stream_options);

  const auto metrics = omega::core::metrics::scan_metrics("kill", result.profile);
  const auto& runtime = metrics.at("runtime");
  EXPECT_TRUE(runtime.at("cancelled").as_bool());
  EXPECT_EQ(runtime.at("cancel_reason").as_string(), "api");
  EXPECT_GT(runtime.at("checkpoints_written").as_uint(), 0u);
  EXPECT_GT(runtime.at("checkpoint_bytes").as_uint(), 0u);
  EXPECT_GE(runtime.at("cancel_latency_seconds").as_double(), 0.0);
}

}  // namespace
