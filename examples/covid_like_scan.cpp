// Motivated by the paper's introduction: Kang et al. found signatures of a
// selective sweep in the spike gene of SARS-CoV-2. This example builds a
// virus-like scenario — a short genome (30 kb), many sequenced samples, low
// diversity, a sweep planted in the "spike" region — exports it as a FASTA
// alignment (the format such analyses start from), re-imports it through the
// FASTA -> binary-SNP reduction, and scans for the sweep.
//
//   $ ./covid_like_scan [--samples 400] [--seed 19]

#include <cstdio>
#include <sstream>

#include "io/fasta.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "sweep/detector.h"
#include "util/cli.h"
#include "util/prng.h"
#include "util/table.h"

namespace {

constexpr std::int64_t kGenomeLength = 30'000;       // ~SARS-CoV-2 size
constexpr std::int64_t kSpikeStart = 21'500;          // spike ORF, roughly
constexpr std::int64_t kSpikeEnd = 25'400;
constexpr std::int64_t kSweepPosition = 23'000;       // inside spike

/// Renders the binary SNP dataset as a FASTA alignment: a random reference
/// genome with the derived allele at each SNP column substituted for
/// carriers.
std::string to_fasta(const omega::io::Dataset& dataset,
                     omega::util::Xoshiro256& rng) {
  const char bases[4] = {'A', 'C', 'G', 'T'};
  std::string reference(static_cast<std::size_t>(kGenomeLength), 'A');
  for (auto& base : reference) base = bases[rng.bounded(4)];

  std::ostringstream out;
  for (std::size_t h = 0; h < dataset.num_samples(); ++h) {
    std::string sequence = reference;
    for (std::size_t s = 0; s < dataset.num_sites(); ++s) {
      if (dataset.allele(s, h) == 0) continue;
      const auto column = static_cast<std::size_t>(dataset.position(s) - 1);
      // Derived allele: a fixed transversion of the reference base.
      const char ref_base = reference[column];
      sequence[column] = ref_base == 'T' ? 'G' : 'T';
    }
    out << ">sample_" << h << "\n" << sequence << "\n";
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("samples", "number of viral genomes (default 400)")
      .describe("seed", "simulation seed (default 19)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("covid_like_scan — spike-sweep scenario").c_str());
    return 0;
  }
  cli.reject_unknown();
  const auto samples = static_cast<std::size_t>(cli.get_int("samples", 400));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 19));

  // Low-diversity neutral background across the genome (viruses recombine
  // little; a modest rho keeps some haplotype structure variation).
  const auto neutral = omega::sim::make_dataset({.snps = 450,
                                                 .samples = samples,
                                                 .locus_length_bp = kGenomeLength,
                                                 .rho = 8.0,
                                                 .seed = seed});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = kSweepPosition;
  sweep.carrier_fraction = 0.96;     // the adaptive lineage has taken over
  sweep.tract_mean_bp = 6'000.0;     // short genome, tight hitchhiking tracts
  sweep.thinning_max = 0.6;
  sweep.thinning_scale_bp = 2'500.0;
  sweep.seed = seed + 1;
  const auto swept = omega::sim::apply_sweep(neutral, sweep);

  // FASTA round trip — the entry format of real viral analyses.
  omega::util::Xoshiro256 rng(seed + 2);
  const std::string fasta_text = to_fasta(swept, rng);
  std::istringstream fasta_in(fasta_text);
  const auto records = omega::io::read_fasta(fasta_in);
  const auto dataset = omega::io::fasta_to_dataset(records);
  std::printf("alignment: %zu genomes x %lld bp -> %s after SNP reduction\n",
              records.size(), static_cast<long long>(kGenomeLength),
              dataset.shape_string().c_str());

  // Genome-wide scan; windows sized for a 30 kb genome.
  omega::sweep::DetectorOptions options;
  options.config.grid_size = 60;
  options.config.max_window = 8'000;
  options.config.min_window = 1'000;
  const auto report = omega::sweep::detect_sweeps(dataset, options, 5);

  omega::util::Table table({"rank", "position", "omega", "in spike ORF?"});
  int rank = 1;
  for (const auto& candidate : report.candidates) {
    const bool in_spike =
        candidate.position_bp >= kSpikeStart && candidate.position_bp <= kSpikeEnd;
    table.add_row({std::to_string(rank++),
                   std::to_string(candidate.position_bp),
                   omega::util::Table::num(candidate.omega, 2),
                   in_spike ? "yes" : "no"});
  }
  table.print();

  const auto& best = report.candidates.front();
  const bool hit = best.position_bp >= kSpikeStart && best.position_bp <= kSpikeEnd;
  std::printf("\ntop signal at %lld bp — %s the spike ORF [%lld, %lld] "
              "(sweep planted at %lld)\n",
              static_cast<long long>(best.position_bp),
              hit ? "inside" : "outside", static_cast<long long>(kSpikeStart),
              static_cast<long long>(kSpikeEnd),
              static_cast<long long>(kSweepPosition));
  return hit ? 0 : 1;
}
