// quickLD-style LD analysis tool: computes D / D' / r2 between two genomic
// intervals (possibly distant — the scan is tiled, memory stays O(tile)) and
// prints summary statistics plus the top high-LD pairs in a PLINK-like
// layout. Demonstrates the LD substrate standing alone, independent of the
// omega machinery.
//
//   $ ./ld_scan_tool --snps 1500 --from-a 0 --to-a 300000 \
//                    --from-b 600000 --to-b 1000000 --threshold 0.2

#include <cstdio>

#include "ld/ld_stats.h"
#include "ld/snp_matrix.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "util/cli.h"
#include "util/table.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("snps", "SNPs to simulate (default 1500)")
      .describe("samples", "haplotypes to simulate (default 100)")
      .describe("from-a", "region A start, bp (default 0)")
      .describe("to-a", "region A end, bp (default 300000)")
      .describe("from-b", "region B start, bp (default 600000)")
      .describe("to-b", "region B end, bp (default 1000000)")
      .describe("threshold", "high-LD r2 threshold (default 0.2)")
      .describe("maf", "minor-allele-frequency filter (default 0.05)")
      .describe("top", "top pairs to print (default 8)")
      .describe("seed", "simulation seed (default 9)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("ld_scan_tool — region-by-region LD scan").c_str());
    return 0;
  }
  cli.reject_unknown();

  const auto dataset = omega::sim::make_dataset(
      {.snps = static_cast<std::size_t>(cli.get_int("snps", 1'500)),
       .samples = static_cast<std::size_t>(cli.get_int("samples", 100)),
       .locus_length_bp = 1'000'000,
       .rho = 40.0,
       .seed = static_cast<std::uint64_t>(cli.get_int("seed", 9))});
  const omega::ld::SnpMatrix snps(dataset);
  std::printf("dataset: %s\n", dataset.shape_string().c_str());

  // Resolve bp intervals to SNP index ranges.
  auto index_of = [&](std::int64_t bp) {
    std::size_t index = 0;
    while (index < dataset.num_sites() && dataset.position(index) < bp) ++index;
    return index;
  };
  const std::size_t a_begin = index_of(cli.get_int("from-a", 0));
  const std::size_t a_end = index_of(cli.get_int("to-a", 300'000));
  const std::size_t b_begin = index_of(cli.get_int("from-b", 600'000));
  const std::size_t b_end = index_of(cli.get_int("to-b", 1'000'000));

  omega::ld::LdScanOptions options;
  options.high_ld_threshold = cli.get_double("threshold", 0.2);
  options.min_maf = cli.get_double("maf", 0.05);
  options.top_pairs = static_cast<std::size_t>(cli.get_int("top", 8));

  omega::par::ThreadPool pool;
  omega::util::Timer timer;
  const auto result = omega::ld::ld_region_scan_parallel(
      pool, snps, a_begin, a_end, b_begin, b_end, options);
  const double seconds = timer.seconds();

  std::printf("regions: A = SNPs [%zu, %zu), B = SNPs [%zu, %zu)\n", a_begin,
              a_end, b_begin, b_end);
  std::printf("pairs:   %llu evaluated (%llu MAF-skipped) in %.3fs "
              "(%.1f Mpairs/s)\n",
              static_cast<unsigned long long>(result.pairs_evaluated),
              static_cast<unsigned long long>(result.pairs_skipped_maf),
              seconds,
              static_cast<double>(result.pairs_evaluated) / seconds / 1e6);
  std::printf("r2:      mean %.4f, max %.4f; %llu pairs >= %.2f\n\n",
              result.mean_r2, result.max_r2,
              static_cast<unsigned long long>(result.high_ld_pairs),
              options.high_ld_threshold);

  omega::util::Table table({"BP_A", "BP_B", "D", "D'", "R2"});
  for (const auto& pair : result.top) {
    table.add_row({std::to_string(dataset.position(pair.site_a)),
                   std::to_string(dataset.position(pair.site_b)),
                   omega::util::Table::num(pair.stats.d, 4),
                   omega::util::Table::num(pair.stats.d_prime, 3),
                   omega::util::Table::num(pair.stats.r2, 4)});
  }
  table.print();
  return 0;
}
