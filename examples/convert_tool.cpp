// Dataset format converter: reads ms / VCF / FASTA (or simulates) and writes
// ms or VCF — the glue for feeding this library's simulated datasets into
// external tools (PLINK, the reference OmegaPlus) and vice versa.
//
//   $ ./convert_tool --input data.ms --length 1000000 --output data.vcf
//   $ ./convert_tool --simulate-snps 1000 --output sim.ms

#include <cstdio>
#include <stdexcept>

#include "io/fasta.h"
#include "io/ms_format.h"
#include "io/vcf_lite.h"
#include "sim/dataset_factory.h"
#include "util/cli.h"

namespace {

std::string extension_of(const std::string& path) {
  const auto dot = path.find_last_of('.');
  return dot == std::string::npos ? "" : path.substr(dot + 1);
}

omega::io::Dataset load(const omega::util::Cli& cli) {
  const std::string input = cli.get("input", "");
  if (input.empty()) {
    omega::sim::DatasetSpec spec;
    spec.snps = static_cast<std::size_t>(cli.get_int("simulate-snps", 1'000));
    spec.samples =
        static_cast<std::size_t>(cli.get_int("simulate-samples", 50));
    spec.locus_length_bp = cli.get_int("length", 1'000'000);
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    return omega::sim::make_dataset(spec);
  }
  const std::string ext = extension_of(input);
  if (ext == "ms" || ext == "out") {
    omega::io::MsReadOptions options;
    options.locus_length_bp = cli.get_int("length", 1'000'000);
    auto replicates = omega::io::read_ms_file(input, options);
    if (replicates.empty()) throw std::runtime_error("ms: no replicates");
    return std::move(replicates.front());
  }
  if (ext == "vcf") return omega::io::read_vcf_file(input);
  if (ext == "fa" || ext == "fasta") {
    return omega::io::fasta_to_dataset(omega::io::read_fasta_file(input));
  }
  throw std::runtime_error("cannot infer input format from ." + ext);
}

}  // namespace

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("input", "input file (.ms/.vcf/.fasta); omit to simulate")
      .describe("output", "output file (.ms or .vcf) — required")
      .describe("length", "locus length in bp for ms input (default 1e6)")
      .describe("haploid", "vcf output: one column per haplotype")
      .describe("simulate-snps", "simulation: SNP count (default 1000)")
      .describe("simulate-samples", "simulation: haplotypes (default 50)")
      .describe("seed", "simulation seed (default 1)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("convert_tool — dataset format converter").c_str());
    return 0;
  }
  cli.reject_unknown();

  const std::string output = cli.get("output", "");
  if (output.empty()) {
    std::fprintf(stderr, "error: --output is required (see --help)\n");
    return 2;
  }
  const auto dataset = load(cli);
  std::printf("loaded: %s\n", dataset.shape_string().c_str());

  const std::string ext = extension_of(output);
  if (ext == "ms") {
    omega::io::write_ms_file(output, {dataset});
  } else if (ext == "vcf") {
    omega::io::VcfWriteOptions options;
    options.pair_into_diploids = !cli.get_bool("haploid", false);
    omega::io::write_vcf_file(output, dataset, options);
  } else {
    std::fprintf(stderr, "error: unsupported output format .%s\n", ext.c_str());
    return 2;
  }
  std::printf("wrote %s\n", output.c_str());
  return 0;
}
