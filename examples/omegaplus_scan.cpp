// Full command-line application mirroring the reference OmegaPlus tool:
// loads a dataset (ms / VCF / FASTA — or simulates one), runs the selected
// backend, and writes OmegaPlus-compatible Report/Info files.
//
//   # scan an ms file with 1,000 grid positions
//   $ ./omegaplus_scan --name run1 --input data.ms --length 1000000 \
//         --grid 1000 --minwin 10000 --maxwin 200000
//
//   # no input file: simulate 2,000 SNPs x 100 samples with a sweep planted
//   # mid-locus, scan on the simulated FPGA backend
//   $ ./omegaplus_scan --name demo --simulate-snps 2000 \
//         --simulate-samples 100 --plant-sweep --backend fpga
//
// Output: <reports-dir>/OmegaPlus_Report.<name> and OmegaPlus_Info.<name>.
// Observability outputs (--metrics-json, --trace-out, --metrics-text,
// --progress) are documented in docs/OBSERVABILITY.md; the metrics document
// is emitted even when the scan aborts, with "aborted": true and the error.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>

#include "core/checkpoint.h"
#include "core/metrics_json.h"
#include "core/report.h"
#include "core/scanner.h"
#include "core/stream_scanner.h"
#include "hw/device_specs.h"
#include "io/chunk_reader.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "hw/hetero_profile.h"
#include "io/fasta.h"
#include "io/ms_format.h"
#include "io/vcf_lite.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_coalescent.h"
#include "sim/sweep_overlay.h"
#include "util/cancel.h"
#include "util/cli.h"
#include "util/fault.h"
#include "util/flight_recorder.h"
#include "util/perf_counters.h"
#include "util/progress.h"
#include "util/telemetry.h"
#include "util/trace.h"

namespace {

std::string detect_format(const std::string& path) {
  const auto dot = path.find_last_of('.');
  const std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
  if (ext == "ms" || ext == "out") return "ms";
  if (ext == "vcf") return "vcf";
  if (ext == "fa" || ext == "fasta" || ext == "fas") return "fasta";
  throw std::runtime_error("cannot infer format from '" + path +
                           "'; pass --format ms|vcf|fasta");
}

omega::io::Dataset load_input(const omega::util::Cli& cli) {
  const std::string input = cli.get("input", "");
  if (input.empty()) {
    // Simulation mode.
    omega::sim::DatasetSpec spec;
    spec.snps = static_cast<std::size_t>(cli.get_int("simulate-snps", 1'000));
    spec.samples =
        static_cast<std::size_t>(cli.get_int("simulate-samples", 50));
    spec.locus_length_bp = cli.get_int("length", 1'000'000);
    spec.rho = cli.get_double("simulate-rho", 80.0);
    spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    if (cli.get_bool("structured-sweep", false)) {
      // Structured-coalescent sweep: footprint derives from alpha = 2Ns.
      omega::sim::SweepCoalescentConfig sweep;
      sweep.samples = spec.samples;
      sweep.theta = cli.get_double("simulate-theta", 150.0);
      sweep.rho = spec.rho * 4.0;
      sweep.alpha = cli.get_double("sweep-alpha", 1'000.0);
      sweep.locus_length_bp = spec.locus_length_bp;
      sweep.sweep_position_bp =
          cli.get_int("sweep-pos", spec.locus_length_bp / 2);
      sweep.seed = spec.seed;
      return omega::sim::simulate_sweep_coalescent(sweep);
    }
    auto dataset = omega::sim::make_dataset(spec);
    if (cli.get_bool("plant-sweep", false)) {
      omega::sim::SweepConfig sweep;
      sweep.sweep_position_bp =
          cli.get_int("sweep-pos", spec.locus_length_bp / 2);
      sweep.carrier_fraction = cli.get_double("sweep-carriers", 0.95);
      sweep.seed = spec.seed + 1;
      dataset = omega::sim::apply_sweep(dataset, sweep);
    }
    return dataset;
  }

  std::string format = cli.get("format", "auto");
  if (format == "auto") format = detect_format(input);
  if (format == "ms") {
    omega::io::MsReadOptions options;
    options.locus_length_bp = cli.get_int("length", 1'000'000);
    auto replicates = omega::io::read_ms_file(input, options);
    if (replicates.empty()) throw std::runtime_error("ms: no replicates");
    const auto index = static_cast<std::size_t>(cli.get_int("replicate", 0));
    if (index >= replicates.size()) {
      throw std::runtime_error("ms: replicate index out of range");
    }
    return std::move(replicates[index]);
  }
  if (format == "vcf") {
    omega::io::VcfLoadReport report;
    auto dataset = omega::io::read_vcf_file(input, &report);
    std::printf("vcf: %zu records, %zu skipped\n", report.records_total,
                report.records_skipped);
    return dataset;
  }
  if (format == "fasta") {
    omega::io::FastaOptions options;
    options.impute_missing_as_major = cli.get_bool("impute", true);
    return omega::io::fasta_to_dataset(omega::io::read_fasta_file(input),
                                       options);
  }
  throw std::runtime_error("unknown format: " + format);
}

/// Loads the input, runs the scan, and writes reports plus any requested
/// observability outputs. Split out of main() so the abort path there can
/// still emit the metrics/trace documents when anything here throws.
int run_scan(const omega::util::Cli& cli, const std::string& name,
             const std::string& metrics_path, bool trace_enabled,
             omega::util::ProgressReporter* progress,
             const std::function<void()>& write_trace_file,
             const std::function<void()>& write_metrics_text) {
  const bool stream_mode = cli.get_bool("stream", false);
  omega::io::Dataset dataset;
  std::unique_ptr<omega::io::ChunkReader> reader;
  if (stream_mode) {
    const std::string input = cli.get("input", "");
    std::string format = cli.get("format", "auto");
    if (!input.empty() && format == "auto") format = detect_format(input);
    const bool file_streamed =
        !input.empty() && (format == "ms" || format == "vcf");
    if (file_streamed && cli.get_double("maf", 0.0) > 0.0) {
      std::fprintf(stderr,
                   "error: --maf is not supported with streamed ms/vcf input "
                   "(only the monomorphic filter runs record-at-a-time)\n");
      return 2;
    }
    if (file_streamed && format == "ms") {
      omega::io::MsReadOptions ms_options;
      ms_options.locus_length_bp = cli.get_int("length", 1'000'000);
      reader = std::make_unique<omega::io::MsChunkReader>(
          input, ms_options,
          static_cast<std::size_t>(cli.get_int("replicate", 0)));
    } else if (file_streamed) {
      auto vcf = std::make_unique<omega::io::VcfChunkReader>(input);
      std::printf("vcf: %zu records, %zu skipped\n",
                  vcf->load_report().records_total,
                  vcf->load_report().records_skipped);
      reader = std::move(vcf);
    } else {
      // Simulated / fasta inputs have no streaming parser; chunk the loaded
      // dataset so the pipeline (and its metrics) still runs.
      dataset = load_input(cli);
      const double maf = cli.get_double("maf", 0.0);
      if (maf > 0.0) {
        const auto removed = dataset.filter_minor_allele(maf);
        std::printf("maf filter %.3f: removed %zu sites\n", maf, removed);
      }
      reader = std::make_unique<omega::io::DatasetChunkReader>(dataset);
    }
    std::printf("stream: indexed %zu sites x %zu haplotypes (%s)\n",
                reader->index().num_sites(), reader->index().num_samples,
                reader->name().c_str());
  } else {
    dataset = load_input(cli);
    const double maf = cli.get_double("maf", 0.0);
    if (maf > 0.0) {
      const auto removed = dataset.filter_minor_allele(maf);
      std::printf("maf filter %.3f: removed %zu sites\n", maf, removed);
    }
    std::printf("dataset: %s\n", dataset.shape_string().c_str());
  }

  omega::core::ScannerOptions options;
  options.config.grid_size = static_cast<std::size_t>(cli.get_int("grid", 1'000));
  options.config.max_window = cli.get_int("maxwin", 200'000);
  options.config.min_window = cli.get_int("minwin", 10'000);
  if (cli.get_bool("snp-windows", false)) {
    options.config.window_unit = omega::core::WindowUnit::Snps;
  }
  options.config.max_snps_per_side =
      static_cast<std::size_t>(cli.get_int("side-cap", 0));
  // 0 = auto-detect; resolve once here (the ScannerOptions::threads
  // convention) so the reported backend name carries the actual count.
  options.threads = omega::core::resolve_scan_threads(
      static_cast<std::size_t>(cli.get_int("threads", 1)));
  if (cli.get("mt-strategy", "grid") == "inner") {
    options.mt_strategy =
        omega::core::ScannerOptions::MtStrategy::InnerPosition;
  }
  // --ld-engine supersedes the legacy --ld flag (which keeps working when it
  // alone is given). Default auto: the packed engine with runtime
  // AVX2/scalar microkernel dispatch — every engine produces bitwise-
  // identical r2, so this only changes throughput.
  try {
    options.ld = omega::core::ld_backend_from_name(
        cli.get("ld-engine", cli.get("ld", "auto")));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  options.progress = progress;
  try {
    options.cpu_kernel =
        omega::core::cpu_kernel_from_name(cli.get("cpu-kernel", "auto"));
    // Fail fast on a forced-but-unrunnable kernel (e.g. --cpu-kernel=avx2 on
    // a host without AVX2+FMA) instead of deep inside scan().
    (void)omega::core::resolve_cpu_kernel(options.cpu_kernel);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }

  // Cooperative cancellation: SIGINT/SIGTERM flip the process token, and a
  // --deadline-seconds budget converts expiry into the same drain path. The
  // scan stops at the next position boundary, commits what it has, and the
  // report/metrics/checkpoint paths below still run.
  options.cancel = &omega::util::process_cancel_token();
  options.deadline_seconds = cli.get_double("deadline-seconds", 0.0);

  // Fault injection (simulated accelerators only) + recovery policy.
  omega::util::fault::FaultPlan fault_plan;
  fault_plan.mode =
      omega::util::fault::mode_from_name(cli.get("fault-mode", "none"));
  fault_plan.rate = cli.get_double("fault-rate", 0.1);
  fault_plan.seed = static_cast<std::uint64_t>(cli.get_int("fault-seed", 1337));
  fault_plan.window_begin =
      static_cast<std::uint64_t>(cli.get_int("fault-after", 0));
  fault_plan.device_lost_after =
      static_cast<std::uint64_t>(cli.get_int("device-lost-after", 0));
  fault_plan.validate();
  const double modeled_timeout = cli.get_double("modeled-timeout", 0.0);
  options.recovery.max_retries =
      static_cast<std::size_t>(cli.get_int("max-retries", 3));
  options.recovery.fallback_to_cpu = cli.get_bool("cpu-fallback", true);

  const std::string directory = cli.get("reports-dir", ".");
  std::filesystem::create_directories(directory);

  omega::core::StreamScanOptions stream_options;
  stream_options.chunk_sites =
      static_cast<std::size_t>(cli.get_int("chunk-sites", 100'000));
  const bool resume = cli.get_bool("resume", false);
  if (cli.has("checkpoint") || resume) {
    // `--checkpoint` alone uses the default path next to the reports;
    // `--checkpoint=path` overrides it. `--resume` implies checkpointing.
    const std::string raw = cli.get("checkpoint", "true");
    stream_options.checkpoint_path =
        raw == "true" ? directory + "/" + name + ".ckpt" : raw;
    stream_options.resume = resume;
    stream_options.source_path = cli.get("input", "");
  }

  const std::string backend = cli.get("backend", "cpu");
  omega::core::ScanResult result;
  std::string backend_name = "cpu";
  omega::par::ThreadPool pool;
  // One dispatch for both drivers: the streamed and in-memory scans take the
  // same options and backend factories.
  const auto run =
      [&](const std::function<std::unique_ptr<omega::core::OmegaBackend>()>&
              factory) {
        return stream_mode
                   ? omega::core::stream_scan(*reader, options, stream_options,
                                              factory)
                   : omega::core::scan(dataset, options, factory);
      };
  if (backend == "cpu") {
    result = run({});
    backend_name = options.threads > 1
                       ? "cpu x" + std::to_string(options.threads)
                       : "cpu";
  } else if (backend == "gpu") {
    const auto spec = omega::hw::tesla_k80();
    options.threads = 1;
    omega::hw::gpu::GpuBackendOptions backend_options;
    backend_options.fault_plan = fault_plan;
    backend_options.modeled_timeout_seconds = modeled_timeout;
    omega::hw::gpu::GpuOmegaBackend gpu(spec, pool, backend_options);
    result = run([&] { return omega::core::borrow_backend(gpu); });
    backend_name = gpu.name();
    std::printf("gpu-sim: modeled device time %.4f s (%llu on K1, %llu on K2)\n",
                gpu.accounting().modeled_total_seconds,
                static_cast<unsigned long long>(gpu.accounting().positions_kernel1),
                static_cast<unsigned long long>(gpu.accounting().positions_kernel2));
  } else if (backend == "fpga") {
    options.threads = 1;
    omega::hw::fpga::FpgaBackendOptions backend_options;
    backend_options.fault_plan = fault_plan;
    backend_options.modeled_timeout_seconds = modeled_timeout;
    omega::hw::fpga::FpgaOmegaBackend fpga(omega::hw::alveo_u200(),
                                           backend_options);
    result = run([&] { return omega::core::borrow_backend(fpga); });
    backend_name = fpga.name();
    std::printf("fpga-sim: modeled device time %.4f s (%llu hw / %llu sw omegas)\n",
                fpga.accounting().modeled_total_seconds(),
                static_cast<unsigned long long>(fpga.accounting().hw_omegas),
                static_cast<unsigned long long>(fpga.accounting().sw_omegas));
  } else if (backend == "hetero") {
    // Heterogeneous co-scheduler: the grid splits across the CPU span engine
    // and both simulated accelerators concurrently (core/hetero_scheduler.h);
    // results are bitwise-identical to --backend=cpu for any split.
    omega::hw::HeteroProfileOptions profile_options;
    try {
      profile_options.split =
          omega::core::HeteroSplit::parse(cli.get("hetero-split", "auto"));
    } catch (const std::exception& error) {
      std::fprintf(stderr, "error: %s\n", error.what());
      return 2;
    }
    profile_options.fault_plan = fault_plan;
    profile_options.cancel = options.cancel;
    profile_options.cpu_kernel = options.cpu_kernel;
    const omega::core::HeteroConfig hetero_config =
        omega::hw::default_hetero_config(profile_options, pool);
    options.hetero = &hetero_config;
    result = run({});
    options.hetero = nullptr;  // config goes out of scope with this branch
    backend_name = "hetero[" + profile_options.split.name() + "]";
    const auto& hetero_stats = result.profile.hetero;
    for (const auto& part : hetero_stats.partitions) {
      std::printf(
          "hetero: %-28s weight %.2f planned %llu actual %llu "
          "(modeled %.4f s, measured %.4f s)\n",
          part.backend.c_str(), part.weight,
          static_cast<unsigned long long>(part.planned_positions),
          static_cast<unsigned long long>(part.actual_positions),
          part.modeled_seconds, part.measured_seconds);
    }
    if (hetero_stats.redispatched_spans > 0) {
      std::printf("hetero: re-dispatched %llu spans / %llu positions "
                  "(%llu straggler, %llu faulted)\n",
                  static_cast<unsigned long long>(
                      hetero_stats.redispatched_spans),
                  static_cast<unsigned long long>(
                      hetero_stats.redispatched_positions),
                  static_cast<unsigned long long>(hetero_stats.straggler_spans),
                  static_cast<unsigned long long>(hetero_stats.faulted_spans));
    }
  } else {
    std::fprintf(stderr, "error: unknown backend '%s'\n", backend.c_str());
    return 2;
  }
  if (fault_plan.enabled() && backend == "cpu") {
    std::fprintf(stderr,
                 "warning: --fault-mode only affects the gpu/fpga backends\n");
  }

  std::string report_path;
  if (stream_mode) {
    const auto& index = reader->index();
    const std::string summary =
        std::to_string(index.num_sites()) + " sites x " +
        std::to_string(index.num_samples) + " haplotypes, locus " +
        std::to_string(index.locus_length_bp) + " bp (streamed)";
    report_path =
        omega::core::write_run_files(directory, name, summary,
                                     index.has_missing, options, result,
                                     backend_name);
    const auto& stream = result.profile.stream;
    std::printf(
        "stream: %llu chunks, peak resident %llu of %llu sites "
        "(overlap %llu), %.0f%% IO hidden\n",
        static_cast<unsigned long long>(stream.chunks),
        static_cast<unsigned long long>(stream.peak_resident_sites),
        static_cast<unsigned long long>(stream.total_sites),
        static_cast<unsigned long long>(stream.overlap_sites),
        stream.io_overlap_ratio() * 100.0);
  } else {
    report_path = omega::core::write_run_files(directory, name, dataset,
                                               options, result, backend_name);
  }
  std::printf("scan: %llu omega evaluations in %.3f s (%.1f Mw/s)\n",
              static_cast<unsigned long long>(result.profile.omega_evaluations),
              result.profile.total_seconds,
              result.profile.omega_throughput() / 1e6);
  const auto& kernel = result.profile.kernel;
  std::printf("cpu-kernel: requested %s, selected %s (avx2 %s)\n",
              kernel.requested.c_str(), kernel.selected.c_str(),
              kernel.avx2_supported ? "available" : "unavailable");
  const auto& faults = result.profile.faults;
  if (faults.faults_injected > 0 || faults.errors_caught > 0 ||
      faults.quarantined_positions > 0 || faults.degradations > 0) {
    std::printf(
        "recovery: %llu faults injected, %llu retries, %llu quarantined, "
        "%llu degradations (%.4f s virtual backoff)\n",
        static_cast<unsigned long long>(faults.faults_injected),
        static_cast<unsigned long long>(faults.retries),
        static_cast<unsigned long long>(faults.quarantined_positions),
        static_cast<unsigned long long>(faults.degradations),
        faults.backoff_virtual_seconds);
  }
  if (result.has_valid()) {
    const auto& best = result.best();
    std::printf("best: omega %.4f at %lld bp\n", best.max_omega,
                static_cast<long long>(best.position_bp));
  } else {
    std::printf("best: none (no position produced a valid omega score)\n");
  }
  std::printf("wrote %s\n", report_path.c_str());

  if (!metrics_path.empty()) {
    auto metrics = omega::core::metrics::scan_metrics(name, result.profile);
    if (trace_enabled) {
      metrics.set("trace", omega::core::metrics::trace_to_json());
    }
    omega::core::metrics::write_json_file(metrics_path, metrics);
    std::printf("metrics written to %s\n", metrics_path.c_str());
  }
  write_trace_file();
  write_metrics_text();

  const auto& runtime = result.profile.runtime;
  if (runtime.checkpoints_written > 0) {
    std::printf("checkpoint: %llu writes (%llu bytes) to %s%s\n",
                static_cast<unsigned long long>(runtime.checkpoints_written),
                static_cast<unsigned long long>(runtime.checkpoint_bytes),
                stream_options.checkpoint_path.c_str(),
                runtime.chunks_resumed > 0 ? " (resumed)" : "");
  }
  if (runtime.cancelled) {
    std::printf(
        "runtime: cancelled (%s) — partial results, %llu positions "
        "unscanned, drain latency %.3f s\n",
        runtime.cancel_reason.c_str(),
        static_cast<unsigned long long>(runtime.positions_skipped),
        runtime.cancel_latency_seconds);
    // Distinct exit codes so automation can tell a drained interruption
    // (resumable) from a hard failure: 10 = signal, 11 = deadline expiry.
    return runtime.cancel_reason == "deadline" ? 11 : 10;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("name", "run name used in the output file names (required)")
      .describe("input", "input file; omit to simulate a dataset")
      .describe("format", "ms | vcf | fasta | auto (default auto)")
      .describe("replicate", "ms replicate index (default 0)")
      .describe("length", "locus length in bp for ms input / simulation")
      .describe("grid", "number of omega positions (default 1000)")
      .describe("minwin", "minimum window in bp (default 10000)")
      .describe("maxwin", "maximum window in bp (default 200000)")
      .describe("snp-windows", "interpret minwin/maxwin as SNP counts")
      .describe("side-cap", "max SNPs per sub-region, 0 = unlimited")
      .describe("threads",
                "worker threads for the CPU scan (default 1; 0 = all cores)")
      .describe("stream",
                "memory-bounded streaming scan: read the input in overlapping "
                "chunks instead of loading it whole (ms/vcf stream from the "
                "file; other inputs chunk in memory)")
      .describe("chunk-sites",
                "streaming: target segregating sites per chunk "
                "(default 100000)")
      .describe("checkpoint",
                "streaming: write a crash-safe checkpoint after every "
                "committed chunk; optional value sets the path (default "
                "<reports-dir>/<name>.ckpt)")
      .describe("resume",
                "streaming: resume from the checkpoint instead of starting "
                "over; the dataset and scan config must match the run that "
                "wrote it")
      .describe("deadline-seconds",
                "wall-clock budget for the scan; expiry drains cleanly and "
                "exits 11 with a partial report (0 = no deadline)")
      .describe("ld-engine",
                "LD engine: auto | naive | popcount | gemm | packed "
                "(default auto = packed with runtime AVX2/scalar dispatch)")
      .describe("ld", "legacy alias of --ld-engine (popcount | gemm)")
      .describe("backend", "cpu | gpu | fpga | hetero (default cpu)")
      .describe("hetero-split",
                "hetero backend grid split: auto (modeled throughput) or "
                "cpu:gpu:fpga weights, e.g. 2:1:1 (default auto)")
      .describe("cpu-kernel",
                "cpu omega kernel: auto | scalar | portable | avx2 "
                "(default auto)")
      .describe("reports-dir", "output directory (default .)")
      .describe("simulate-snps", "simulation: number of SNPs")
      .describe("simulate-samples", "simulation: number of haplotypes")
      .describe("simulate-rho", "simulation: recombination intensity")
      .describe("plant-sweep", "simulation: impose a hitchhiking overlay sweep")
      .describe("structured-sweep",
                "simulation: structured-coalescent sweep (alpha-driven)")
      .describe("sweep-alpha", "structured sweep: alpha = 2Ns (default 1000)")
      .describe("simulate-theta", "structured sweep: theta (default 150)")
      .describe("maf", "drop sites with minor-allele frequency below this")
      .describe("mt-strategy", "grid | inner (default grid)")
      .describe("sweep-pos", "simulation: sweep position in bp")
      .describe("sweep-carriers", "simulation: carrier fraction")
      .describe("seed", "simulation seed")
      .describe("impute", "fasta: impute gaps as major allele (default true)")
      .describe("metrics-json",
                "write the scan metrics document (omega.scan.metrics schema) "
                "to this path")
      .describe("trace",
                "record trace spans during the scan; embedded in the "
                "--metrics-json document")
      .describe("trace-out",
                "write the scan trace as a Chrome trace-event JSON file "
                "(loadable in Perfetto / chrome://tracing); implies --trace")
      .describe("metrics-text",
                "write the telemetry registry in Prometheus text exposition "
                "format to this path ('-' for stdout)")
      .describe("progress",
                "live progress on stderr; optional value sets the minimum "
                "seconds between updates (default 1.0), e.g. --progress=5")
      .describe("perf-counters",
                "sample hardware counters (cycles, instructions, cache/branch "
                "misses) per scan stage via perf_event_open; degrades to a "
                "clock-only fallback where perf is unavailable and stamps the "
                "metrics 'perf' block either way")
      .describe("flight-recorder",
                "arm the crash flight recorder: on a fatal signal, SIGTERM, "
                "std::terminate, or exhausted fault recovery, dump the last "
                "trace events + telemetry + perf block as JSON; optional "
                "value sets the path (default <metrics-json>.flight.json, or "
                "<reports-dir>/<name>.flight.json without --metrics-json)")
      .describe("fault-mode",
                "inject accelerator faults: none | kernel-launch | timeout | "
                "nan | device-lost | mixed (default none)")
      .describe("fault-rate", "per-call fault probability (default 0.1)")
      .describe("fault-seed", "fault-injection PRNG seed (default 1337)")
      .describe("fault-after",
                "first backend call eligible for injection (default 0)")
      .describe("device-lost-after",
                "lose the device permanently at the N-th backend call")
      .describe("modeled-timeout",
                "per-position modeled device-time budget in seconds; "
                "exceeding it raises a timeout error (0 = off)")
      .describe("max-retries",
                "retries per position before quarantine (default 3)")
      .describe("cpu-fallback",
                "demote a lost device to the CPU loop instead of "
                "quarantining the rest of its chunk (default true)");
  if (cli.wants_help()) {
    std::printf("%s",
                cli.help_text("omegaplus_scan — OmegaPlus-style sweep scanner")
                    .c_str());
    return 0;
  }
  cli.reject_unknown();

  const std::string name = cli.get("name", "");
  if (name.empty()) {
    std::fprintf(stderr, "error: --name is required (see --help)\n");
    return 2;
  }

  // Crash-safe runtime flags are validated up front so a bad combination
  // fails before any parsing or scanning starts.
  const bool stream_flag = cli.get_bool("stream", false);
  if (cli.get_bool("resume", false) && !stream_flag) {
    std::fprintf(stderr, "error: --resume requires --stream\n");
    return 2;
  }
  if (cli.has("checkpoint") && !stream_flag) {
    std::fprintf(stderr, "error: --checkpoint requires --stream\n");
    return 2;
  }
  if (cli.has("deadline-seconds") &&
      cli.get_double("deadline-seconds", 0.0) <= 0.0) {
    std::fprintf(stderr, "error: --deadline-seconds must be > 0\n");
    return 2;
  }
  omega::util::install_cancel_signal_handlers();

  // Observability outputs are resolved before any heavy work so the abort
  // path below can still emit them when loading or scanning fails.
  const std::string metrics_path = cli.get("metrics-json", "");
  if (cli.get_bool("perf-counters", false)) {
    omega::util::perf::enable();
    std::fprintf(stderr, "perf: counters enabled (source: %s)\n",
                 omega::util::perf::source());
  }
  if (cli.has("flight-recorder")) {
    // Armed AFTER install_cancel_signal_handlers() so a SIGTERM first dumps
    // the flight record, then chains into the cancel token for a clean drain.
    const std::string raw = cli.get("flight-recorder", "true");
    omega::util::flight::FlightRecorderConfig flight;
    if (raw != "true") {
      flight.path = raw;
    } else if (!metrics_path.empty()) {
      flight.path = metrics_path + ".flight.json";
    } else {
      flight.path = cli.get("reports-dir", ".") + "/" + name + ".flight.json";
    }
    omega::util::flight::arm(flight);
    std::fprintf(stderr, "flight-recorder: armed, dump path %s\n",
                 flight.path.c_str());
  }
  const std::string trace_path = cli.get("trace-out", "");
  const std::string metrics_text_path = cli.get("metrics-text", "");
  const bool trace_enabled =
      cli.get_bool("trace", false) || !trace_path.empty();
  if (trace_enabled) omega::util::trace::enable();

  std::unique_ptr<omega::util::ProgressReporter> progress;
  if (cli.has("progress")) {
    // `--progress` alone parses as the value "true"; `--progress=5` sets the
    // update interval in seconds.
    const std::string raw = cli.get("progress", "true");
    const double interval = raw == "true" ? 1.0 : std::stod(raw);
    progress = std::make_unique<omega::util::ProgressReporter>(
        omega::util::ProgressReporter::stderr_sink(), interval);
  }

  const auto write_trace_file = [&] {
    if (trace_path.empty()) return;
    omega::core::metrics::write_json_file(
        trace_path, omega::core::metrics::chrome_trace());
    std::printf("trace written to %s\n", trace_path.c_str());
  };
  const auto write_metrics_text = [&] {
    if (metrics_text_path.empty()) return;
    const std::string text = omega::util::telemetry::to_text();
    if (metrics_text_path == "-") {
      std::fputs(text.c_str(), stdout);
      return;
    }
    std::ofstream out(metrics_text_path);
    if (!out) throw std::runtime_error("cannot write " + metrics_text_path);
    out << text;
    std::printf("telemetry text written to %s\n", metrics_text_path.c_str());
  };

  try {
    return run_scan(cli, name, metrics_path, trace_enabled, progress.get(),
                    write_trace_file, write_metrics_text);
  } catch (const omega::core::ResumeMismatchError& error) {
    // A checkpoint that does not match the current dataset/config is a usage
    // error (same class as a bad flag), not a scan failure.
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    if (!metrics_path.empty()) {
      // The metrics document is emitted even on abort so automation always
      // has an artifact to inspect: whatever telemetry accumulated before the
      // failure, plus "aborted": true and the error text.
      omega::core::ScanProfile profile;
      profile.telemetry = omega::util::telemetry::snapshot();
      auto metrics = omega::core::metrics::scan_metrics(name, profile);
      metrics.set("aborted", true);
      metrics.set("error", std::string(error.what()));
      if (trace_enabled) {
        metrics.set("trace", omega::core::metrics::trace_to_json());
      }
      try {
        omega::core::metrics::write_json_file(metrics_path, metrics);
        std::printf("metrics written to %s\n", metrics_path.c_str());
      } catch (const std::exception& write_error) {
        std::fprintf(stderr, "error: %s\n", write_error.what());
      }
    }
    try {
      write_trace_file();
      write_metrics_text();
    } catch (const std::exception& write_error) {
      std::fprintf(stderr, "error: %s\n", write_error.what());
    }
    return 1;
  }
}
