# CTest script for the crash-safe runtime CLI surface:
#   * bad flag combinations are rejected up front (exit 2);
#   * a deadline-expired streaming scan drains cleanly (exit 11), leaves a
#     valid checkpoint and a metrics document with the schema-v8 runtime
#     block, and never leaks a .ckpt.tmp temp file;
#   * --resume completes the scan (exit 0) and the final report is
#     byte-identical to an uninterrupted run;
#   * resuming with a changed chunk decomposition is a usage error (exit 2).
# Invoked as:
#   cmake -DSCAN_BIN=... -DWORK_DIR=... -P cli_runtime.cmake

foreach(var SCAN_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_runtime: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Small but multi-chunk simulated workload, identical for every invocation.
set(scan_args
  --simulate-snps 800 --simulate-samples 32 --seed 7
  --grid 120 --minwin 10000 --maxwin 200000
  --stream --chunk-sites 200 --reports-dir "${WORK_DIR}")

# --- 1. up-front flag validation ------------------------------------------

execute_process(
  COMMAND "${SCAN_BIN}" --name badflags --resume --reports-dir "${WORK_DIR}"
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "cli_runtime: --resume without --stream exited ${result}, want 2\n${output}")
endif()

execute_process(
  COMMAND "${SCAN_BIN}" --name badflags --deadline-seconds 0
    --reports-dir "${WORK_DIR}"
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "cli_runtime: --deadline-seconds 0 exited ${result}, want 2\n${output}")
endif()

# --- 2. uninterrupted reference run ---------------------------------------

execute_process(
  COMMAND "${SCAN_BIN}" --name ref ${scan_args}
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "cli_runtime: reference run failed (${result})\n${output}")
endif()

# --- 3. deadline expiry: clean drain, checkpoint, exit 11 -----------------

set(metrics_file "${WORK_DIR}/deadline_metrics.json")
execute_process(
  COMMAND "${SCAN_BIN}" --name run ${scan_args}
    --checkpoint --deadline-seconds 0.000001
    --metrics-json "${metrics_file}"
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 11)
  message(FATAL_ERROR
    "cli_runtime: deadline-expired scan exited ${result}, want 11\n${output}")
endif()
if(NOT EXISTS "${WORK_DIR}/run.ckpt")
  message(FATAL_ERROR
    "cli_runtime: interrupted scan left no checkpoint\n${output}")
endif()
if(NOT EXISTS "${metrics_file}")
  message(FATAL_ERROR
    "cli_runtime: interrupted scan wrote no metrics document\n${output}")
endif()
file(READ "${metrics_file}" metrics_text)
if(NOT metrics_text MATCHES "\"cancelled\": true")
  message(FATAL_ERROR
    "cli_runtime: metrics lack \"cancelled\": true:\n${metrics_text}")
endif()
if(NOT metrics_text MATCHES "\"deadline_outcome\": \"expired\"")
  message(FATAL_ERROR
    "cli_runtime: metrics lack the expired deadline outcome:\n${metrics_text}")
endif()

# --- 4. resume to completion: exit 0, byte-identical report ---------------

execute_process(
  COMMAND "${SCAN_BIN}" --name run ${scan_args} --checkpoint --resume
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 0)
  message(FATAL_ERROR "cli_runtime: resume run exited ${result}, want 0\n${output}")
endif()

file(READ "${WORK_DIR}/OmegaPlus_Report.ref" ref_report)
file(READ "${WORK_DIR}/OmegaPlus_Report.run" run_report)
if(NOT ref_report STREQUAL run_report)
  message(FATAL_ERROR
    "cli_runtime: resumed report differs from the uninterrupted reference")
endif()

# --- 5. resume with a changed chunk decomposition is a usage error --------

execute_process(
  COMMAND "${SCAN_BIN}" --name run
    --simulate-snps 800 --simulate-samples 32 --seed 7
    --grid 120 --minwin 10000 --maxwin 200000
    --stream --chunk-sites 400 --reports-dir "${WORK_DIR}"
    --checkpoint --resume
  RESULT_VARIABLE result OUTPUT_VARIABLE output ERROR_VARIABLE output)
if(NOT result EQUAL 2)
  message(FATAL_ERROR
    "cli_runtime: resume with changed --chunk-sites exited ${result}, want 2\n"
    "${output}")
endif()

# --- 6. no leaked checkpoint temp files -----------------------------------

file(GLOB leaked_tmp "${WORK_DIR}/*.ckpt.tmp")
if(leaked_tmp)
  message(FATAL_ERROR "cli_runtime: leaked checkpoint temp files: ${leaked_tmp}")
endif()

message(STATUS "cli_runtime: flag validation, deadline drain, resume identity OK")
