// Full sweep-detection workflow on data with a *planted* selective sweep:
// simulate neutral variation, impose the hitchhiking signature at a chosen
// locus, round-trip the dataset through the ms interchange format (as a real
// pipeline would), scan, and visualize the omega landscape — the planted
// sweep should dominate it.
//
//   $ ./sweep_scan [--sweep-pos 650000] [--seed 11]

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/scanner.h"
#include "io/ms_format.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "util/cli.h"

namespace {

/// Coarse ASCII rendering of the omega landscape.
void draw_landscape(const omega::core::ScanResult& result,
                    std::int64_t truth_bp) {
  double max_omega = 0.0;
  for (const auto& score : result.scores) {
    max_omega = std::max(max_omega, score.max_omega);
  }
  const int height = 12;
  std::printf("\nomega landscape (grid positions left to right; * = planted "
              "sweep column):\n");
  for (int row = height; row >= 1; --row) {
    const double threshold =
        max_omega * static_cast<double>(row - 1) / height;
    std::string line;
    for (const auto& score : result.scores) {
      line += score.max_omega > threshold ? '#' : ' ';
    }
    std::printf("%8.1f |%s|\n", max_omega * row / height, line.c_str());
  }
  std::string axis;
  for (const auto& score : result.scores) {
    const bool near_truth = std::abs(score.position_bp - truth_bp) <
                            (result.scores.size() > 1
                                 ? (result.scores[1].position_bp -
                                    result.scores[0].position_bp)
                                 : 1);
    axis += near_truth ? '*' : '-';
  }
  std::printf("         +%s+\n", axis.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("sweep-pos", "planted sweep position in bp (default 650000)")
      .describe("seed", "simulation seed (default 11)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("sweep_scan — planted-sweep workflow").c_str());
    return 0;
  }
  cli.reject_unknown();
  const std::int64_t sweep_pos = cli.get_int("sweep-pos", 650'000);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));

  // Neutral background with recombination.
  const auto neutral = omega::sim::make_dataset({.snps = 900,
                                                 .samples = 60,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 150.0,
                                                 .seed = seed});
  // Hitchhiking overlay: reduced variation + one-sided LD around sweep_pos.
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = sweep_pos;
  sweep.carrier_fraction = 0.96;
  sweep.tract_mean_bp = 220'000.0;
  sweep.seed = seed + 1;
  const auto swept = omega::sim::apply_sweep(neutral, sweep);
  std::printf("neutral: %s\nswept:   %s (variation thinned near %lld)\n",
              neutral.shape_string().c_str(), swept.shape_string().c_str(),
              static_cast<long long>(sweep_pos));

  // Round-trip through the ms interchange format.
  std::ostringstream buffer;
  omega::io::write_ms(buffer, {swept});
  std::istringstream replay(buffer.str());
  omega::io::MsReadOptions ms_options;
  ms_options.locus_length_bp = swept.locus_length_bp();
  const auto loaded = omega::io::read_ms(replay, ms_options).front();

  // Scan.
  omega::core::ScannerOptions options;
  options.config.grid_size = 64;
  options.config.max_window = 250'000;
  options.config.min_window = 20'000;
  options.config.max_snps_per_side = 200;
  const auto result = omega::core::scan(loaded, options);

  draw_landscape(result, sweep_pos);

  const auto& best = result.best();
  std::printf("\nmax omega %.2f at position %lld (planted sweep at %lld, "
              "off by %lld bp)\n",
              best.max_omega, static_cast<long long>(best.position_bp),
              static_cast<long long>(sweep_pos),
              static_cast<long long>(std::abs(best.position_bp - sweep_pos)));
  std::printf("scan: %llu omega evaluations in %.3fs (%.1f Mw/s), "
              "%llu r2 values\n",
              static_cast<unsigned long long>(result.profile.omega_evaluations),
              result.profile.total_seconds,
              result.profile.omega_throughput() / 1e6,
              static_cast<unsigned long long>(result.profile.r2_fetched));
  return 0;
}
