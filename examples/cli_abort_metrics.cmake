# CTest script: a scan that aborts (missing input file) must still write the
# --metrics-json document, stamped with "aborted": true, before exiting
# non-zero. Invoked as:
#   cmake -DSCAN_BIN=... -DWORK_DIR=... -P cli_abort_metrics.cmake

foreach(var SCAN_BIN WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_abort_metrics: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(metrics_file "${WORK_DIR}/abort_metrics.json")
execute_process(
  COMMAND "${SCAN_BIN}"
    --name abort_test
    --input "${WORK_DIR}/does_not_exist.vcf"
    --metrics-json "${metrics_file}"
    --reports-dir "${WORK_DIR}"
  RESULT_VARIABLE scan_result
  OUTPUT_VARIABLE scan_output
  ERROR_VARIABLE scan_output)

if(scan_result EQUAL 0)
  message(FATAL_ERROR
    "cli_abort_metrics: scan of a missing input succeeded unexpectedly\n"
    "${scan_output}")
endif()
if(NOT EXISTS "${metrics_file}")
  message(FATAL_ERROR
    "cli_abort_metrics: aborted scan (exit ${scan_result}) wrote no metrics "
    "document\n${scan_output}")
endif()

file(READ "${metrics_file}" metrics_text)
if(NOT metrics_text MATCHES "\"aborted\": true")
  message(FATAL_ERROR
    "cli_abort_metrics: metrics document lacks \"aborted\": true:\n"
    "${metrics_text}")
endif()
if(NOT metrics_text MATCHES "\"error\":")
  message(FATAL_ERROR
    "cli_abort_metrics: metrics document lacks the \"error\" field:\n"
    "${metrics_text}")
endif()
message(STATUS "cli_abort_metrics: abort document written (exit ${scan_result})")
