// Tour of the three selective-sweep signatures (paper §II) on one dataset:
//
//   (a) reduced genetic variation       — SNP density / pi per window
//   (b) SFS shift                       — Tajima's D per window
//   (c) the LD pattern                  — the omega statistic (what the
//                                         paper accelerates)
//
// A sweep is planted mid-locus; the example prints the three landscapes side
// by side so the complementary nature of the signatures — and why omega is
// the direct LD-based indicator — is visible in one table.
//
//   $ ./signatures_tour [--seed 5]

#include <algorithm>
#include <cstdio>

#include "core/scanner.h"
#include "popgen/diversity.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "util/cli.h"
#include "util/table.h"

namespace {

std::string bar(double value, double maximum, int width = 18) {
  if (maximum <= 0.0) return "";
  const int fill = std::clamp(
      static_cast<int>(value / maximum * width + 0.5), 0, width);
  return std::string(static_cast<std::size_t>(fill), '#');
}

}  // namespace

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("seed", "simulation seed (default 5)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("signatures_tour — the three sweep signatures").c_str());
    return 0;
  }
  cli.reject_unknown();
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));

  constexpr std::int64_t kSweep = 500'000;
  const auto neutral = omega::sim::make_dataset({.snps = 1'000,
                                                 .samples = 60,
                                                 .locus_length_bp = 1'000'000,
                                                 .rho = 120.0,
                                                 .seed = seed});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = kSweep;
  sweep.carrier_fraction = 0.93;
  sweep.tract_mean_bp = 180'000.0;
  sweep.thinning_max = 0.6;
  sweep.seed = seed + 1;
  const auto dataset = omega::sim::apply_sweep(neutral, sweep);
  std::printf("dataset: %s; sweep planted at %lld bp\n\n",
              dataset.shape_string().c_str(), static_cast<long long>(kSweep));

  // (a) + (b): windowed diversity statistics.
  const auto windows = omega::popgen::windowed_stats(dataset, 100'000, 100'000);

  // (c): the omega landscape at the window midpoints.
  omega::core::ScannerOptions options;
  options.config.grid_size = windows.size();
  options.config.max_window = 200'000;
  options.config.min_window = 20'000;
  options.config.max_snps_per_side = 150;
  const auto scan = omega::core::scan(dataset, options);

  double max_pi = 0.0, max_omega = 0.0;
  for (const auto& window : windows) max_pi = std::max(max_pi, window.pi);
  for (const auto& score : scan.scores) {
    max_omega = std::max(max_omega, score.max_omega);
  }

  omega::util::Table table({"window (kb)", "S", "pi (a)", "Tajima D (b)",
                            "omega (c)", "omega bar"});
  for (std::size_t w = 0; w < windows.size(); ++w) {
    const auto& window = windows[w];
    const double omega_value =
        w < scan.scores.size() ? scan.scores[w].max_omega : 0.0;
    const bool is_sweep_window =
        window.start_bp <= kSweep && kSweep < window.end_bp;
    table.add_row(
        {std::to_string(window.start_bp / 1'000) + "-" +
             std::to_string(window.end_bp / 1'000) + (is_sweep_window ? " *" : ""),
         std::to_string(window.segregating_sites),
         omega::util::Table::num(window.pi, 1),
         omega::util::Table::num(window.tajimas_d, 2),
         omega::util::Table::num(omega_value, 1),
         bar(omega_value, max_omega)});
  }
  table.print();
  std::printf("\n(* = window containing the planted sweep)\n");
  std::printf("expected: the sweep window shows fewer segregating sites and "
              "lower pi (a), more negative Tajima's D (b), and the omega "
              "peak (c).\n");

  // Machine-checkable summary for CI-style use.
  const auto& best = scan.best();
  const bool omega_hits =
      std::abs(best.position_bp - kSweep) <= 150'000;
  std::printf("\nomega argmax at %lld bp -> %s the sweep neighbourhood\n",
              static_cast<long long>(best.position_bp),
              omega_hits ? "inside" : "outside");
  return omega_hits ? 0 : 1;
}
