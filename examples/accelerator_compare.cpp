// Runs the identical sweep scan on every backend — CPU, multithreaded CPU,
// the simulated GPU (Tesla K80 profile, dynamic two-kernel deployment), and
// the simulated FPGA (Alveo U200 pipeline) — verifying that all four report
// the same winning locus, and showing each accelerator's modeled device time
// next to the host wall clock.
//
//   $ ./accelerator_compare [--snps 600] [--grid 40]

#include <cstdio>
#include <memory>

#include "core/scanner.h"
#include "hw/device_specs.h"
#include "hw/fpga/fpga_backend.h"
#include "hw/gpu/gpu_backend.h"
#include "par/thread_pool.h"
#include "sim/dataset_factory.h"
#include "sim/sweep_overlay.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("snps", "SNPs to simulate (default 600)")
      .describe("grid", "omega positions (default 40)");
  if (cli.wants_help()) {
    std::printf("%s",
                cli.help_text("accelerator_compare — backend equivalence").c_str());
    return 0;
  }
  cli.reject_unknown();

  const auto neutral = omega::sim::make_dataset(
      {.snps = static_cast<std::size_t>(cli.get_int("snps", 600)),
       .samples = 50,
       .locus_length_bp = 1'000'000,
       .rho = 120.0,
       .seed = 33});
  omega::sim::SweepConfig sweep;
  sweep.sweep_position_bp = 420'000;
  sweep.carrier_fraction = 0.95;
  const auto dataset = omega::sim::apply_sweep(neutral, sweep);
  std::printf("dataset: %s, planted sweep at 420000 bp\n\n",
              dataset.shape_string().c_str());

  omega::core::ScannerOptions options;
  options.config.grid_size = static_cast<std::size_t>(cli.get_int("grid", 40));
  options.config.max_window = 250'000;
  options.config.min_window = 20'000;
  options.config.max_snps_per_side = 150;

  omega::par::ThreadPool pool;
  const auto k80 = omega::hw::tesla_k80();
  const auto alveo = omega::hw::alveo_u200();

  omega::util::Table table({"backend", "best position", "max omega",
                            "host wall (s)", "modeled device (s)"});

  // CPU reference.
  const auto cpu = omega::core::scan(dataset, options);
  table.add_row({"cpu (1 thread)", std::to_string(cpu.best().position_bp),
                 omega::util::Table::num(cpu.best().max_omega, 4),
                 omega::util::Table::num(cpu.profile.total_seconds, 3), "-"});

  // Multithreaded CPU.
  auto mt_options = options;
  mt_options.threads = 4;
  const auto mt = omega::core::scan(dataset, mt_options);
  table.add_row({"cpu (4 threads)", std::to_string(mt.best().position_bp),
                 omega::util::Table::num(mt.best().max_omega, 4),
                 omega::util::Table::num(mt.profile.total_seconds, 3), "-"});

  // Simulated GPU (caller-owned so its accounting survives the scan).
  omega::hw::gpu::GpuOmegaBackend gpu_backend(k80, pool);
  const auto gpu = omega::core::scan(
      dataset, options, [&] { return omega::core::borrow_backend(gpu_backend); });
  table.add_row({"gpu-sim (K80)", std::to_string(gpu.best().position_bp),
                 omega::util::Table::num(gpu.best().max_omega, 4),
                 omega::util::Table::num(gpu.profile.total_seconds, 3),
                 omega::util::Table::num(
                     gpu_backend.accounting().modeled_total_seconds, 6)});

  // Simulated FPGA.
  omega::hw::fpga::FpgaOmegaBackend fpga_backend(alveo);
  const auto fpga = omega::core::scan(dataset, options, [&] {
    return omega::core::borrow_backend(fpga_backend);
  });
  table.add_row({"fpga-sim (U200)", std::to_string(fpga.best().position_bp),
                 omega::util::Table::num(fpga.best().max_omega, 4),
                 omega::util::Table::num(fpga.profile.total_seconds, 3),
                 omega::util::Table::num(
                     fpga_backend.accounting().modeled_total_seconds(), 6)});
  table.print();

  const auto& gpu_acct = gpu_backend.accounting();
  std::printf("\ngpu-sim detail: %llu positions on Kernel I, %llu on Kernel "
              "II; %.2f MB moved; modeled prep/transfer/kernel = "
              "%.4f/%.4f/%.4f s\n",
              static_cast<unsigned long long>(gpu_acct.positions_kernel1),
              static_cast<unsigned long long>(gpu_acct.positions_kernel2),
              static_cast<double>(gpu_acct.bytes_moved) / 1e6,
              gpu_acct.modeled_prep_seconds, gpu_acct.modeled_transfer_seconds,
              gpu_acct.modeled_kernel_seconds);
  const auto& fpga_acct = fpga_backend.accounting();
  std::printf("fpga-sim detail: %llu omegas in hardware, %llu in software "
              "remainder; %.2f Mcycles\n",
              static_cast<unsigned long long>(fpga_acct.hw_omegas),
              static_cast<unsigned long long>(fpga_acct.sw_omegas),
              static_cast<double>(fpga_acct.modeled_cycles) / 1e6);

  const bool agree = cpu.best().position_bp == gpu.best().position_bp &&
                     cpu.best().position_bp == fpga.best().position_bp &&
                     cpu.best().position_bp == mt.best().position_bp;
  std::printf("\nall backends agree on the winning locus: %s\n",
              agree ? "YES" : "NO");
  return agree ? 0 : 1;
}
