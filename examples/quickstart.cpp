// Quickstart: simulate a small dataset, scan it for selective sweeps with
// the default CPU backend, and print the top candidate regions.
//
//   $ ./quickstart [--snps 800] [--samples 50] [--grid 50] [--seed 1]

#include <cstdio>

#include "sim/dataset_factory.h"
#include "sweep/detector.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  omega::util::Cli cli(argc, argv);
  cli.describe("snps", "number of SNPs to simulate (default 800)")
      .describe("samples", "number of haplotypes (default 50)")
      .describe("grid", "number of omega positions (default 50)")
      .describe("seed", "simulation seed (default 1)");
  if (cli.wants_help()) {
    std::printf("%s", cli.help_text("quickstart — minimal libomega usage").c_str());
    return 0;
  }
  cli.reject_unknown();

  // 1. Get data: here a neutral coalescent simulation; real analyses load
  //    an ms / VCF / FASTA file through omega::io instead.
  omega::sim::DatasetSpec spec;
  spec.snps = static_cast<std::size_t>(cli.get_int("snps", 800));
  spec.samples = static_cast<std::size_t>(cli.get_int("samples", 50));
  spec.locus_length_bp = 1'000'000;
  spec.rho = 60.0;
  spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto dataset = omega::sim::make_dataset(spec);
  std::printf("dataset: %s\n", dataset.shape_string().c_str());

  // 2. Configure the scan (OmegaPlus-style parameters).
  omega::sweep::DetectorOptions options;
  options.config.grid_size = static_cast<std::size_t>(cli.get_int("grid", 50));
  options.config.max_window = 200'000;  // bp
  options.config.min_window = 10'000;   // bp

  // 3. Scan and report.
  const auto report = omega::sweep::detect_sweeps(dataset, options, 5);
  std::printf("backend: %s — %llu omega evaluations, %.3fs\n\n",
              report.backend_name.c_str(),
              static_cast<unsigned long long>(report.profile.omega_evaluations),
              report.profile.total_seconds);

  omega::util::Table table({"rank", "position (bp)", "max omega", "best window"});
  int rank = 1;
  for (const auto& candidate : report.candidates) {
    table.add_row({std::to_string(rank++),
                   std::to_string(candidate.position_bp),
                   omega::util::Table::num(candidate.omega, 3),
                   std::to_string(candidate.window_start_bp) + ".." +
                       std::to_string(candidate.window_end_bp)});
  }
  table.print();
  return 0;
}
